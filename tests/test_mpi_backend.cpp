// Real-MPI backend suite (GALACTOS_WITH_MPI builds; the MPI CI job runs it
// under `mpirun -np {2,4}` — see tests/CMakeLists.txt).
//
// Every rank runs the whole gtest suite; collective tests communicate
// through the shared Session created in main() BEFORE RUN_ALL_TESTS (MPI
// initializes once per process). Launched without mpirun the backend
// factory auto-falls back to threads and the MPI-only tests GTEST_SKIP —
// so the binary is also safe to execute directly.
//
// The headline assertion is the backend-equivalence guarantee: because
// every collective is layered on transport point-to-point sends with one
// fixed combination tree, a P-rank MPI run must reduce to a ZetaResult
// BITWISE identical to the P-rank thread-backed (minimpi) run on the same
// input — both backends execute in this one binary.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "dist/error.hpp"
#include "dist/fault.hpp"
#include "dist/mpi_comm.hpp"
#include "dist/runner.hpp"
#include "sim/generators.hpp"

namespace c = galactos::core;
namespace d = galactos::dist;
namespace s = galactos::sim;

namespace {

d::Session* g_session = nullptr;

d::Session& session() { return *g_session; }

bool on_mpi() { return session().backend() == d::Backend::kMpi; }

c::EngineConfig small_config() {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 14.0, 3);
  cfg.lmax = 3;
  cfg.threads = 1;
  return cfg;
}

void expect_bitwise_equal(const c::ZetaResult& a, const c::ZetaResult& b) {
  const std::vector<double> pa = a.reduce_payload();
  const std::vector<double> pb = b.reduce_payload();
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_FALSE(pa.empty());
  EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)))
      << "MPI and minimpi reductions differ at the bit level";
  EXPECT_EQ(a.n_primaries, b.n_primaries);
  EXPECT_EQ(a.n_pairs, b.n_pairs);
}

}  // namespace

TEST(MpiBackend, SessionMatchesLauncher) {
  if (!d::mpi_launcher_detected()) GTEST_SKIP() << "not under mpirun";
  EXPECT_TRUE(on_mpi());
  EXPECT_GE(session().size(), 1);
  EXPECT_LT(session().rank(), session().size());
}

// Inside session().run lambdas only NONFATAL expectations are safe: a
// fatal ASSERT returns early without an exception, skipping the rest of
// the communication protocol and deadlocking the peer ranks (the
// abort-on-exception path never fires). Guard instead of asserting.
TEST(MpiBackend, PointToPointOverMpi) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  session().run(2, [](d::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 7, {1, 2, 3});
      const auto back = comm.recv<int>(1, 8);
      EXPECT_EQ(back.size(), 3u);
      if (back.size() == 3u) {
        EXPECT_EQ(back[2], 30);
      }
    } else {
      auto v = comm.recv<int>(0, 7);
      for (int& x : v) x *= 10;
      comm.send(0, 8, v);
    }
  });
}

TEST(MpiBackend, NonBlockingRecvOverMpi) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  session().run(2, [](d::Comm& comm) {
    if (comm.rank() == 0) {
      d::RecvRequest<double> req = comm.irecv<double>(1, 42);
      comm.send<double>(1, 41, {2.5});  // release the peer
      const std::vector<double> got = req.get();
      EXPECT_EQ(got.size(), 2u);
      if (got.size() == 2u) {
        EXPECT_DOUBLE_EQ(got[1], 6.25);
      }
    } else {
      const double x = comm.recv<double>(0, 41)[0];
      comm.send<double>(0, 42, {x, x * x});
    }
  });
}

TEST(MpiBackend, CollectivesOverFullWorld) {
  if (!on_mpi()) GTEST_SKIP() << "not under mpirun";
  const int P = session().size();
  session().run(P, [P](d::Comm& comm) {
    EXPECT_EQ(comm.size(), P);
    const int sum = comm.allreduce_sum_value(comm.rank() + 1, 50);
    EXPECT_EQ(sum, P * (P + 1) / 2);
    std::vector<std::uint64_t> v{static_cast<std::uint64_t>(comm.rank())};
    const auto all = comm.allgather(v, 51);
    EXPECT_EQ(all.size(), static_cast<std::size_t>(P));
    for (int r = 0; r < P && r < static_cast<int>(all.size()); ++r) {
      const auto& part = all[static_cast<std::size_t>(r)];
      EXPECT_EQ(part.size(), 1u);
      if (part.size() == 1u) {
        EXPECT_EQ(part[0], static_cast<std::uint64_t>(r));
      }
    }
    comm.barrier(52);
  });
}

// The ISSUE-4 acceptance bar: an np-rank MPI run and an np-rank minimpi
// run reduce to identical bits on the same catalog. Swept over every rank
// count the world can host, including sub-communicator runs (np < world).
TEST(MpiBackend, RunDistributedMatchesMinimpiBitwise) {
  if (!on_mpi()) GTEST_SKIP() << "not under mpirun";
  const s::Catalog cat = s::uniform_box(900, s::Aabb::cube(65), 321);

  for (int nranks = 1; nranks <= session().size(); ++nranks) {
    d::DistRunConfig cfg;
    cfg.engine = small_config();
    cfg.ranks = nranks;

    std::vector<d::RankReport> mpi_reports;
    const c::ZetaResult over_mpi =
        d::run_distributed(session(), cat, cfg, &mpi_reports);
    // Thread-backed reference, in-process on every MPI rank.
    std::vector<d::RankReport> thr_reports;
    const c::ZetaResult over_threads =
        d::run_distributed(cat, cfg, &thr_reports);

    SCOPED_TRACE("nranks=" + std::to_string(nranks));
    expect_bitwise_equal(over_mpi, over_threads);
    ASSERT_EQ(mpi_reports.size(), thr_reports.size());
    for (std::size_t i = 0; i < mpi_reports.size(); ++i) {
      EXPECT_EQ(mpi_reports[i].owned, thr_reports[i].owned);
      EXPECT_EQ(mpi_reports[i].pairs, thr_reports[i].pairs);
    }
  }
}

// Both partition policies and every overlap depth — including the
// two-pass pipeline, whose owned pass polls real MPI_Request progress
// between leaf batches — stay exact over MPI.
TEST(MpiBackend, PolicyAndOverlapSweepMatchesMinimpi) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  const s::Catalog cat = s::uniform_box(700, s::Aabb::cube(55), 654);
  for (auto policy : {d::PartitionPolicy::kPrimaryBalanced,
                      d::PartitionPolicy::kPairWeighted}) {
    for (auto overlap : {d::OverlapMode::kSequential,
                         d::OverlapMode::kIndexBuild,
                         d::OverlapMode::kTwoPass}) {
      d::DistRunConfig cfg;
      cfg.engine = small_config();
      cfg.ranks = session().size();
      cfg.partition = policy;
      cfg.overlap = overlap;
      const c::ZetaResult over_mpi = d::run_distributed(session(), cat, cfg);
      const c::ZetaResult over_threads = d::run_distributed(cat, cfg);
      SCOPED_TRACE(std::string("policy=") +
                   (policy == d::PartitionPolicy::kPairWeighted ? "pair"
                                                                : "primary") +
                   " overlap=" + d::overlap_mode_name(overlap));
      expect_bitwise_equal(over_mpi, over_threads);
    }
  }
}

// The MPI_Isend pending list is reaped on every send/recv/post_recv, so
// even a send-heavy full pipeline run must leave it near-empty — not
// growing with the message count (the PR-7 bound this suite asserts).
TEST(MpiBackend, PendingSendListStaysBounded) {
  if (!on_mpi()) GTEST_SKIP() << "not under mpirun";
  d::DistRunConfig cfg;
  cfg.engine = small_config();
  cfg.ranks = session().size();
  const s::Catalog cat = s::uniform_box(800, s::Aabb::cube(60), 42);
  (void)d::run_distributed(session(), cat, cfg);
  // Everything a completed collective posted must have been reaped along
  // the way; only the tail of the final broadcast may still be in flight.
  EXPECT_LE(d::detail::mpi_pending_send_count(), 8u)
      << "pending MPI_Isend list is not being reaped";
}

// Deadline machinery over real MPI: a receive that can never match must
// surface dist::TimeoutError — caught INSIDE the run lambda (an escaping
// exception would MPI_Abort the whole test binary) — and the world must
// still be usable afterwards.
TEST(MpiBackend, TimedRecvOverMpiThrowsTimeout) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  session().run(2, [](d::Comm& comm) {
    if (comm.rank() == 1) {
      comm.set_timeout(0.3);
      bool timed_out = false;
      try {
        (void)comm.recv<int>(0, 70);  // never sent
      } catch (const d::TimeoutError& e) {
        timed_out = true;
        EXPECT_NE(std::string(e.what()).find("dist::TimeoutError"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_TRUE(timed_out);
      comm.set_timeout(0.0);
      comm.send_value<int>(0, 71, 1);  // release the peer: world still live
      EXPECT_EQ(comm.recv_value<int>(0, 72), 2);
    } else {
      (void)comm.recv_value<int>(1, 71);
      comm.send_value<int>(0, 72, 2);
    }
  });
}

// Send-side fault injection interposes on the real MPI transport too: a
// dropped message trips the receiver's deadline, and after clearing the
// plan the same channel works again.
TEST(MpiBackend, InjectedDropOverMpiTripsDeadline) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  d::set_fault_plan(d::FaultPlan::parse("drop:dst=1,tag=80,count=1"));
  session().run(2, [](d::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 80, 5);  // eaten by the plan
      (void)comm.recv_value<int>(1, 81);
      d::clear_fault_plan();
      comm.send_value<int>(1, 80, 6);  // retry after the plan is gone
    } else {
      comm.set_timeout(0.3);
      bool timed_out = false;
      try {
        (void)comm.recv_value<int>(0, 80);
      } catch (const d::TimeoutError&) {
        timed_out = true;
      }
      EXPECT_TRUE(timed_out);
      comm.set_timeout(0.0);
      comm.send_value<int>(0, 81, 1);
      EXPECT_EQ(comm.recv_value<int>(0, 80), 6);
    }
  });
  d::clear_fault_plan();
}

// A duplicated halo message over real MPI must be invisible in the result:
// the extra copy is never claimed, the reduced bits match the clean run.
TEST(MpiBackend, InjectedDupOverMpiIsHarmless) {
  if (!on_mpi() || session().size() < 2) GTEST_SKIP() << "needs MPI np>=2";
  const s::Catalog cat = s::uniform_box(700, s::Aabb::cube(55), 77);
  d::DistRunConfig cfg;
  cfg.engine = small_config();
  cfg.ranks = session().size();
  const c::ZetaResult clean = d::run_distributed(session(), cat, cfg);
  d::set_fault_plan(d::FaultPlan::parse("dup:tag=halo,count=1"));
  const c::ZetaResult dup = d::run_distributed(session(), cat, cfg);
  d::clear_fault_plan();
  expect_bitwise_equal(clean, dup);
}

// MPI ranks can still host thread-backed minimpi worlds internally (the
// reference side of the equivalence tests depends on it).
TEST(MpiBackend, ThreadWorldInsideMpiRank) {
  int sum = 0;
  d::run_ranks(3, [&](d::Comm& comm) {
    const int s = comm.allreduce_sum_value(comm.rank(), 60);
    if (comm.rank() == 0) sum = s;
  });
  EXPECT_EQ(sum, 3);
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // After InitGoogleTest (it strips --gtest_* flags) and before any test:
  // MPI_Init wants the pristine remainder of argv; every rank must create
  // the session exactly once.
  d::Session session = d::init(&argc, &argv);
  g_session = &session;
  const int rc = RUN_ALL_TESTS();
  g_session = nullptr;
  return rc;  // any failing rank exits nonzero; mpirun propagates it
}
