// k-d partitioning invariants (paper §3.2): exactly-once ownership, load
// balance proportional to sub-communicator sizes, domain disjointness, and
// — the crucial one — halo completeness: every rank holds EVERY galaxy
// within R_max of its owned galaxies.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "dist/partition.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace d = galactos::dist;
namespace s = galactos::sim;

namespace {

// Round-robin initial scatter (each galaxy to exactly one rank).
s::Catalog scatter_slice(const s::Catalog& full, int rank, int nranks) {
  s::Catalog mine;
  for (std::size_t i = rank; i < full.size();
       i += static_cast<std::size_t>(nranks))
    mine.push_back(full.position(i), full.w[i]);
  return mine;
}

struct PartitionOutputs {
  std::vector<d::PartitionResult> results;
};

PartitionOutputs run_partition(const s::Catalog& full, int nranks,
                               double rmax) {
  PartitionOutputs out;
  out.results.resize(nranks);
  std::mutex mu;
  d::run_ranks(nranks, [&](d::Comm& comm) {
    const s::Catalog mine = scatter_slice(full, comm.rank(), comm.size());
    d::PartitionResult res = d::kd_partition(comm, mine, rmax);
    std::lock_guard<std::mutex> lock(mu);
    out.results[comm.rank()] = std::move(res);
  });
  return out;
}

// Key for exact-match identification of galaxies.
std::tuple<double, double, double> key(double x, double y, double z) {
  return {x, y, z};
}

}  // namespace

class PartitionInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvariants, OwnershipExactlyOnceAndComplete) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(4000, s::Aabb::cube(100), 77);
  const double rmax = 15.0;
  const auto out = run_partition(full, nranks, rmax);

  std::map<std::tuple<double, double, double>, int> owner_count;
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i])
        owner_count[key(r.local.x[i], r.local.y[i], r.local.z[i])] += 1;

  EXPECT_EQ(owner_count.size(), full.size());
  for (const auto& [k, c] : owner_count) EXPECT_EQ(c, 1);
}

TEST_P(PartitionInvariants, OwnedGalaxiesInsideDomain) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(3000, s::Aabb::cube(80), 78);
  const auto out = run_partition(full, nranks, 10.0);
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i])
        EXPECT_TRUE(r.domain.contains_closed(r.local.position(i)));
}

TEST_P(PartitionInvariants, LoadBalanceProportional) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(8000, s::Aabb::cube(100), 79);
  const auto out = run_partition(full, nranks, 8.0);
  // The recursive proportional split guarantees each rank within ~1 galaxy
  // per level of the exact proportional share; allow 1%.
  const double share = static_cast<double>(full.size()) / nranks;
  for (const auto& r : out.results)
    EXPECT_NEAR(static_cast<double>(r.owned_count()) / share, 1.0, 0.01)
        << "rank owns " << r.owned_count();
}

TEST_P(PartitionInvariants, HaloCompleteness) {
  // For every owned galaxy, every other galaxy of the full catalog within
  // rmax must be present locally (owned or halo).
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(1500, s::Aabb::cube(60), 80);
  const double rmax = 12.0;
  const auto out = run_partition(full, nranks, rmax);

  for (const auto& r : out.results) {
    std::set<std::tuple<double, double, double>> present;
    for (std::size_t i = 0; i < r.local.size(); ++i)
      present.insert(key(r.local.x[i], r.local.y[i], r.local.z[i]));

    for (std::size_t i = 0; i < r.local.size(); ++i) {
      if (!r.owned[i]) continue;
      const s::Vec3 p = r.local.position(i);
      for (std::size_t j = 0; j < full.size(); ++j) {
        const double d2 = (full.position(j) - p).norm2();
        if (d2 <= rmax * rmax)
          EXPECT_TRUE(present.count(key(full.x[j], full.y[j], full.z[j])))
              << "rank missing neighbor at distance " << std::sqrt(d2);
      }
    }
  }
}

TEST_P(PartitionInvariants, HaloGalaxiesAreNearDomain) {
  // No rank should hold galaxies far outside its expanded domain.
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(2000, s::Aabb::cube(70), 81);
  const double rmax = 9.0;
  const auto out = run_partition(full, nranks, rmax);
  for (const auto& r : out.results) {
    const s::Aabb expanded = r.domain.expanded(rmax * 1.0000001);
    for (std::size_t i = 0; i < r.local.size(); ++i)
      EXPECT_TRUE(expanded.contains_closed(r.local.position(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, PartitionInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Partition, WeightsSurviveExchange) {
  const int nranks = 3;
  s::Catalog full = s::uniform_box(500, s::Aabb::cube(40), 82);
  for (std::size_t i = 0; i < full.size(); ++i)
    full.w[i] = 1.0 + static_cast<double>(i % 7);
  const auto out = run_partition(full, nranks, 6.0);
  // Total owned weight preserved.
  double total = 0;
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i]) total += r.local.w[i];
  EXPECT_NEAR(total, full.total_weight(), 1e-9);
}

TEST(Partition, SingleRankKeepsEverything) {
  const s::Catalog full = s::uniform_box(300, s::Aabb::cube(30), 83);
  const auto out = run_partition(full, 1, 5.0);
  EXPECT_EQ(out.results[0].owned_count(), full.size());
  EXPECT_EQ(out.results[0].halo_count(), 0u);
  EXPECT_EQ(out.results[0].levels, 0);
}

TEST(DistributedSplitPoint, FindsMedian) {
  d::run_ranks(4, [](d::Comm& comm) {
    // Values 0..99 strided across 4 ranks; target 50 => cut ~ 50.
    std::vector<double> mine;
    for (int v = comm.rank(); v < 100; v += 4) mine.push_back(v);
    const double cut =
        d::distributed_split_point(comm, mine, -1.0, 101.0, 50, 7000);
    std::int64_t less = 0;
    for (double v : mine)
      if (v < cut) ++less;
    const auto total = comm.allreduce_sum_value<std::int64_t>(less, 7100);
    EXPECT_EQ(total, 50);
  });
}
