// k-d partitioning invariants (paper §3.2): exactly-once ownership, load
// balance proportional to sub-communicator sizes, domain disjointness, and
// — the crucial one — halo completeness: every rank holds EVERY galaxy
// within R_max of its owned galaxies.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "dist/partition.hpp"
#include "tree/kdtree.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace d = galactos::dist;
namespace s = galactos::sim;

namespace {

// Round-robin initial scatter (each galaxy to exactly one rank).
s::Catalog scatter_slice(const s::Catalog& full, int rank, int nranks) {
  s::Catalog mine;
  for (std::size_t i = rank; i < full.size();
       i += static_cast<std::size_t>(nranks))
    mine.push_back(full.position(i), full.w[i]);
  return mine;
}

struct PartitionOutputs {
  std::vector<d::PartitionResult> results;
};

PartitionOutputs run_partition(
    const s::Catalog& full, int nranks, double rmax,
    d::PartitionPolicy policy = d::PartitionPolicy::kPrimaryBalanced) {
  PartitionOutputs out;
  out.results.resize(nranks);
  std::mutex mu;
  d::run_ranks(nranks, [&](d::Comm& comm) {
    const s::Catalog mine = scatter_slice(full, comm.rank(), comm.size());
    d::PartitionResult res = d::kd_partition(comm, mine, rmax, policy);
    std::lock_guard<std::mutex> lock(mu);
    out.results[comm.rank()] = std::move(res);
  });
  return out;
}

// Ownership exactly-once + halo completeness — the invariants every policy
// and every exchange schedule must preserve.
void check_core_invariants(const s::Catalog& full,
                           const std::vector<d::PartitionResult>& results,
                           double rmax) {
  std::map<std::tuple<double, double, double>, int> owner_count;
  for (const auto& r : results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i])
        owner_count[{r.local.x[i], r.local.y[i], r.local.z[i]}] += 1;
  ASSERT_EQ(owner_count.size(), full.size());
  for (const auto& [k, c] : owner_count) EXPECT_EQ(c, 1);

  for (const auto& r : results) {
    std::set<std::tuple<double, double, double>> present;
    for (std::size_t i = 0; i < r.local.size(); ++i)
      present.insert({r.local.x[i], r.local.y[i], r.local.z[i]});
    for (std::size_t i = 0; i < r.local.size(); ++i) {
      if (!r.owned[i]) continue;
      const s::Vec3 p = r.local.position(i);
      for (std::size_t j = 0; j < full.size(); ++j)
        if ((full.position(j) - p).norm2() <= rmax * rmax)
          EXPECT_TRUE(present.count({full.x[j], full.y[j], full.z[j]}))
              << "missing neighbor";
    }
  }
}

// Key for exact-match identification of galaxies.
std::tuple<double, double, double> key(double x, double y, double z) {
  return {x, y, z};
}

}  // namespace

class PartitionInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvariants, OwnershipExactlyOnceAndComplete) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(4000, s::Aabb::cube(100), 77);
  const double rmax = 15.0;
  const auto out = run_partition(full, nranks, rmax);

  std::map<std::tuple<double, double, double>, int> owner_count;
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i])
        owner_count[key(r.local.x[i], r.local.y[i], r.local.z[i])] += 1;

  EXPECT_EQ(owner_count.size(), full.size());
  for (const auto& [k, c] : owner_count) EXPECT_EQ(c, 1);
}

TEST_P(PartitionInvariants, OwnedGalaxiesInsideDomain) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(3000, s::Aabb::cube(80), 78);
  const auto out = run_partition(full, nranks, 10.0);
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i])
        EXPECT_TRUE(r.domain.contains_closed(r.local.position(i)));
}

TEST_P(PartitionInvariants, LoadBalanceProportional) {
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(8000, s::Aabb::cube(100), 79);
  const auto out = run_partition(full, nranks, 8.0);
  // The recursive proportional split guarantees each rank within ~1 galaxy
  // per level of the exact proportional share; allow 1%.
  const double share = static_cast<double>(full.size()) / nranks;
  for (const auto& r : out.results)
    EXPECT_NEAR(static_cast<double>(r.owned_count()) / share, 1.0, 0.01)
        << "rank owns " << r.owned_count();
}

TEST_P(PartitionInvariants, HaloCompleteness) {
  // For every owned galaxy, every other galaxy of the full catalog within
  // rmax must be present locally (owned or halo).
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(1500, s::Aabb::cube(60), 80);
  const double rmax = 12.0;
  const auto out = run_partition(full, nranks, rmax);

  for (const auto& r : out.results) {
    std::set<std::tuple<double, double, double>> present;
    for (std::size_t i = 0; i < r.local.size(); ++i)
      present.insert(key(r.local.x[i], r.local.y[i], r.local.z[i]));

    for (std::size_t i = 0; i < r.local.size(); ++i) {
      if (!r.owned[i]) continue;
      const s::Vec3 p = r.local.position(i);
      for (std::size_t j = 0; j < full.size(); ++j) {
        const double d2 = (full.position(j) - p).norm2();
        if (d2 <= rmax * rmax)
          EXPECT_TRUE(present.count(key(full.x[j], full.y[j], full.z[j])))
              << "rank missing neighbor at distance " << std::sqrt(d2);
      }
    }
  }
}

TEST_P(PartitionInvariants, HaloGalaxiesAreNearDomain) {
  // No rank should hold galaxies far outside its expanded domain.
  const int nranks = GetParam();
  const s::Catalog full = s::uniform_box(2000, s::Aabb::cube(70), 81);
  const double rmax = 9.0;
  const auto out = run_partition(full, nranks, rmax);
  for (const auto& r : out.results) {
    const s::Aabb expanded = r.domain.expanded(rmax * 1.0000001);
    for (std::size_t i = 0; i < r.local.size(); ++i)
      EXPECT_TRUE(expanded.contains_closed(r.local.position(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, PartitionInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Partition, WeightsSurviveExchange) {
  const int nranks = 3;
  s::Catalog full = s::uniform_box(500, s::Aabb::cube(40), 82);
  for (std::size_t i = 0; i < full.size(); ++i)
    full.w[i] = 1.0 + static_cast<double>(i % 7);
  const auto out = run_partition(full, nranks, 6.0);
  // Total owned weight preserved.
  double total = 0;
  for (const auto& r : out.results)
    for (std::size_t i = 0; i < r.local.size(); ++i)
      if (r.owned[i]) total += r.local.w[i];
  EXPECT_NEAR(total, full.total_weight(), 1e-9);
}

TEST(Partition, SingleRankKeepsEverything) {
  const s::Catalog full = s::uniform_box(300, s::Aabb::cube(30), 83);
  const auto out = run_partition(full, 1, 5.0);
  EXPECT_EQ(out.results[0].owned_count(), full.size());
  EXPECT_EQ(out.results[0].halo_count(), 0u);
  EXPECT_EQ(out.results[0].levels, 0);
}

// --- split-phase halo exchange + partition policies ----------------------

TEST(SplitPhaseHalo, PostThenCompleteMatchesInvariants) {
  // post_halo_exchange must return with only owned points and all-owned
  // flags; completing later (after unrelated work) must restore every
  // partition invariant.
  const int nranks = 5;
  const double rmax = 10.0;
  const s::Catalog full = s::uniform_box(1600, s::Aabb::cube(60), 84);
  std::vector<d::PartitionResult> results(nranks);
  std::mutex mu;
  d::run_ranks(nranks, [&](d::Comm& comm) {
    const s::Catalog mine = scatter_slice(full, comm.rank(), comm.size());
    d::PendingPartition pend = d::post_halo_exchange(comm, mine, rmax);
    const std::size_t n_owned = pend.result.local.size();
    EXPECT_EQ(pend.result.owned.size(), n_owned);
    for (std::uint8_t o : pend.result.owned) EXPECT_EQ(o, 1);
    EXPECT_EQ(pend.peers.size(), static_cast<std::size_t>(nranks - 1));

    // Simulate overlapped work between post and complete.
    double busy = 0;
    for (std::size_t i = 0; i < n_owned; ++i) busy += pend.result.local.x[i];
    (void)busy;

    d::PartitionResult res = d::complete_halo_exchange(pend);
    EXPECT_EQ(res.owned_count(), n_owned);  // halo appended after owned
    std::lock_guard<std::mutex> lock(mu);
    results[comm.rank()] = std::move(res);
  });
  check_core_invariants(full, results, rmax);
}

class PairWeightedInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PairWeightedInvariants, OwnershipAndHaloSurvive) {
  const int nranks = GetParam();
  const double rmax = 9.0;
  const s::Catalog full = galactos::testing::clumpy_catalog(1200, 60.0, 85);
  const auto out = run_partition(full, nranks, rmax,
                                 d::PartitionPolicy::kPairWeighted);
  check_core_invariants(full, out.results, rmax);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, PairWeightedInvariants,
                         ::testing::Values(2, 3, 5, 8));

TEST(PairWeighted, ImprovesPairBalanceOnClusteredCatalog) {
  // The Fig. 7 story: primary-balanced cuts equalize galaxy counts, so on a
  // clustered catalog the dense rank does far more pair work; pair-weighted
  // cuts must bring max/mean pair counts strictly closer to 1. A dominant
  // clump holding half the galaxies in 1/512 of the volume makes the
  // imbalance pronounced.
  const int nranks = 8;
  const double rmax = 10.0;
  const double side = 80.0;
  s::Catalog full = s::uniform_box(
      2000, s::Aabb{{0, 0, 0}, {side / 8, side / 8, side / 8}}, 86);
  full.append(s::uniform_box(2000, s::Aabb::cube(side), 87));
  galactos::tree::KdTree<double> index(full);

  auto pair_imbalance = [&](d::PartitionPolicy policy) {
    const auto out = run_partition(full, nranks, rmax, policy);
    std::vector<double> pairs;
    for (const auto& r : out.results) {
      double p = 0;
      for (std::size_t i = 0; i < r.local.size(); ++i)
        if (r.owned[i])
          p += static_cast<double>(index.count_within(
              r.local.x[i], r.local.y[i], r.local.z[i], rmax));
      pairs.push_back(p);
    }
    double mx = 0, sum = 0;
    for (double p : pairs) {
      mx = std::max(mx, p);
      sum += p;
    }
    return mx / (sum / nranks);
  };

  const double balanced = pair_imbalance(d::PartitionPolicy::kPrimaryBalanced);
  const double weighted = pair_imbalance(d::PartitionPolicy::kPairWeighted);
  EXPECT_LT(weighted, balanced);
  EXPECT_GE(weighted, 1.0);
}

// --- distributed_split_point degenerate inputs ---------------------------

TEST(DistributedSplitPoint, AllEqualCoordinates) {
  d::run_ranks(3, [](d::Comm& comm) {
    const std::vector<double> mine(5, 42.0);
    // Degenerate interval: every value sits at one point; the cut must fall
    // back to lo so all values land on the right side (v < cut false).
    const double cut =
        d::distributed_split_point(comm, mine, 42.0, 42.0, 7, 7200);
    EXPECT_DOUBLE_EQ(cut, 42.0);
    for (double v : mine) EXPECT_FALSE(v < cut);
  });
}

TEST(DistributedSplitPoint, EmptyRankContributions) {
  d::run_ranks(4, [](d::Comm& comm) {
    // Only rank 0 holds values; everyone else contributes nothing but must
    // still participate in the reduction.
    std::vector<double> mine;
    if (comm.rank() == 0)
      for (int v = 0; v < 40; ++v) mine.push_back(v);
    const double cut =
        d::distributed_split_point(comm, mine, -1.0, 41.0, 20, 7300);
    std::int64_t below = 0;
    for (double v : mine)
      if (v < cut) ++below;
    EXPECT_EQ(comm.allreduce_sum_value(below, 7301), 20);
  });
}

TEST(DistributedSplitPoint, TargetZeroAndTargetN) {
  d::run_ranks(2, [](d::Comm& comm) {
    std::vector<double> mine;
    for (int v = comm.rank(); v < 30; v += 2) mine.push_back(v);

    const double cut0 =
        d::distributed_split_point(comm, mine, -0.5, 29.5, 0, 7400);
    std::int64_t below = 0;
    for (double v : mine)
      if (v < cut0) ++below;
    EXPECT_EQ(comm.allreduce_sum_value(below, 7401), 0);

    const double cutn =
        d::distributed_split_point(comm, mine, -0.5, 29.5, 30, 7402);
    below = 0;
    for (double v : mine)
      if (v < cutn) ++below;
    EXPECT_EQ(comm.allreduce_sum_value(below, 7403), 30);
  });
}

TEST(DistributedSplitPointWeighted, RespectsWeights) {
  d::run_ranks(2, [](d::Comm& comm) {
    // Values 0..9 on each rank; weight 9 on value 0, weight 1 elsewhere.
    // Half the total weight (18 of 36) sits below any cut in (0, 1].
    std::vector<double> values, weights;
    for (int v = 0; v < 10; ++v) {
      values.push_back(v);
      weights.push_back(v == 0 ? 9.0 : 1.0);
    }
    const double cut = d::distributed_split_point_weighted(
        comm, values, weights, -0.5, 9.5, 18.0, 7500);
    EXPECT_GT(cut, 0.0);
    EXPECT_LE(cut, 1.0);
  });
}

TEST(DistributedSplitPoint, FindsMedian) {
  d::run_ranks(4, [](d::Comm& comm) {
    // Values 0..99 strided across 4 ranks; target 50 => cut ~ 50.
    std::vector<double> mine;
    for (int v = comm.rank(); v < 100; v += 4) mine.push_back(v);
    const double cut =
        d::distributed_split_point(comm, mine, -1.0, 101.0, 50, 7000);
    std::int64_t less = 0;
    for (double v : mine)
      if (v < cut) ++less;
    const auto total = comm.allreduce_sum_value<std::int64_t>(less, 7100);
    EXPECT_EQ(total, 50);
  });
}
