// Periodic ghosts and the periodic-box estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "mocks/lognormal.hpp"
#include "sim/generators.hpp"
#include "sim/periodic.hpp"
#include "test_helpers.hpp"

namespace c = galactos::core;
namespace s = galactos::sim;
namespace mocks = galactos::mocks;

TEST(PeriodicGhosts, InteriorGalaxyHasNoImages) {
  s::Catalog cat;
  cat.push_back(50, 50, 50);
  const auto pc = s::with_periodic_ghosts(cat, s::Aabb::cube(100), 10.0);
  EXPECT_EQ(pc.ghost_count, 0u);
  EXPECT_EQ(pc.points.size(), 1u);
  EXPECT_EQ(pc.primaries.size(), 1u);
}

TEST(PeriodicGhosts, FaceEdgeCornerImageCounts) {
  const s::Aabb box = s::Aabb::cube(100);
  {
    s::Catalog cat;
    cat.push_back(5, 50, 50);  // near one face
    EXPECT_EQ(s::with_periodic_ghosts(cat, box, 10.0).ghost_count, 1u);
  }
  {
    s::Catalog cat;
    cat.push_back(5, 5, 50);  // near an edge: 3 images
    EXPECT_EQ(s::with_periodic_ghosts(cat, box, 10.0).ghost_count, 3u);
  }
  {
    s::Catalog cat;
    cat.push_back(5, 5, 5);  // near a corner: 7 images
    EXPECT_EQ(s::with_periodic_ghosts(cat, box, 10.0).ghost_count, 7u);
  }
}

TEST(PeriodicGhosts, ImagesCarryWeightAndLandOutside) {
  s::Catalog cat;
  cat.push_back(2, 50, 97, 2.5);
  const s::Aabb box = s::Aabb::cube(100);
  const auto pc = s::with_periodic_ghosts(cat, box, 5.0);
  EXPECT_EQ(pc.ghost_count, 3u);  // x-face, z-face, xz-edge
  for (std::size_t i = 1; i < pc.points.size(); ++i) {
    EXPECT_FALSE(box.contains(pc.points.position(i)));
    EXPECT_DOUBLE_EQ(pc.points.w[i], 2.5);
  }
}

TEST(PeriodicGhosts, RejectsOversizedRmax) {
  s::Catalog cat;
  cat.push_back(1, 1, 1);
  EXPECT_THROW(s::with_periodic_ghosts(cat, s::Aabb::cube(10), 5.0),
               std::logic_error);
  EXPECT_THROW(s::with_periodic_ghosts(cat, s::Aabb::cube(10), 0.0),
               std::logic_error);
}

TEST(PeriodicGhosts, RejectsOutOfBoxGalaxies) {
  s::Catalog cat;
  cat.push_back(15, 1, 1);
  EXPECT_THROW(s::with_periodic_ghosts(cat, s::Aabb::cube(10), 2.0),
               std::logic_error);
}

TEST(PeriodicBox3pcf, PairCountsMatchShellVolumesExactly) {
  // With ghosts, every primary has complete shells: pair counts must match
  // nbar * V_shell with no edge depletion.
  const double side = 60.0;
  const std::size_t n = 20000;
  const s::Catalog cat = s::uniform_box(n, s::Aabb::cube(side), 2718);
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 12.0, 4);
  cfg.lmax = 0;
  const c::ZetaResult res =
      c::periodic_box_3pcf(cat, s::Aabb::cube(side), cfg);
  EXPECT_EQ(res.n_primaries, n);
  const double nbar = static_cast<double>(n) / (side * side * side);
  for (int b = 0; b < 4; ++b) {
    const double expect =
        res.sum_primary_weight * nbar * res.bins.shell_volume(b);
    EXPECT_NEAR(res.pair_counts[b] / expect, 1.0, 0.03) << "bin " << b;
  }
}

TEST(PeriodicBox3pcf, RandomCatalogXiNearZero) {
  const double side = 70.0;
  const std::size_t n = 25000;
  const s::Catalog cat = s::uniform_box(n, s::Aabb::cube(side), 9);
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(3.0, 15.0, 3);
  cfg.lmax = 2;
  const c::ZetaResult res =
      c::periodic_box_3pcf(cat, s::Aabb::cube(side), cfg);
  const double nbar = static_cast<double>(n) / (side * side * side);
  for (int b = 0; b < 3; ++b) {
    EXPECT_NEAR(res.xi_l(0, b, nbar), 0.0, 0.03) << b;
    EXPECT_NEAR(res.xi_l(2, b, nbar), 0.0, 0.03) << b;
  }
}

TEST(PeriodicBox3pcf, MatchesInteriorPrimariesOnPeriodicData) {
  // Two unbiased estimators of the same statistic must agree within noise —
  // but ONLY on data that is actually periodic (ghost wrapping invents
  // seam correlations otherwise). Lognormal mocks are FFT-generated and
  // hence exactly periodic.
  mocks::LognormalParams lp;
  lp.grid_n = 32;
  lp.box_side = 250.0;
  lp.nbar = 2e-3;
  lp.seed = 12;
  const mocks::LognormalMock mock =
      mocks::lognormal_catalog(lp, mocks::BaoPowerSpectrum{});

  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(10.0, 40.0, 3);
  cfg.lmax = 2;
  cfg.tree.precision = c::TreePrecision::kMixed;

  const s::Aabb box = s::Aabb::cube(lp.box_side);
  const c::ZetaResult periodic =
      c::periodic_box_3pcf(mock.galaxies, box, cfg);
  const auto prim = s::interior_indices(mock.galaxies, box, 40.0);
  ASSERT_GT(prim.size(), 5000u);
  const c::ZetaResult interior = c::Engine(cfg).run(mock.galaxies, &prim);

  // Compare the isotropic monopole-ish coefficients per primary; interior
  // uses ~1/3 of the volume, so expect agreement at the ~15% noise level.
  for (int b1 = 0; b1 < 3; ++b1)
    for (int b2 = b1; b2 < 3; ++b2) {
      const double a = periodic.zeta_m(b1, b2, 0, 0, 0).real() /
                       periodic.sum_primary_weight;
      const double i = interior.zeta_m(b1, b2, 0, 0, 0).real() /
                       interior.sum_primary_weight;
      EXPECT_NEAR(a / i, 1.0, 0.15) << b1 << "," << b2;
    }
}

TEST(InteriorIndices, SelectsCorrectSubset) {
  s::Catalog cat;
  cat.push_back(5, 50, 50);    // near x face
  cat.push_back(50, 50, 50);   // interior
  cat.push_back(95, 95, 95);   // near corner
  const auto idx = s::interior_indices(cat, s::Aabb::cube(100), 10.0);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], 1);
  // Zero margin keeps everything.
  EXPECT_EQ(s::interior_indices(cat, s::Aabb::cube(100), 0.0).size(), 3u);
}
