// Physics sanity: the statistical properties the estimator must reproduce
// on catalogs with known clustering. Expectation-value tests use interior
// primaries (full R_max spheres inside the data volume) so shell-count
// predictions hold without edge corrections.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "math/stats.hpp"
#include "mocks/lognormal.hpp"
#include "mocks/rsd.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace c = galactos::core;
namespace mo = galactos::mocks;
namespace m = galactos::math;
namespace s = galactos::sim;
using galactos::testing::interior_primaries;

TEST(Physics, RandomCatalogZetaConsistentWithZero) {
  // With self-pairs subtracted and complete shells, E[zeta^m_ll'] = 0 for
  // (l or l') > 0 on a uniform random catalog. Check the measured values
  // against the scatter across independent realizations.
  const int nreal = 6;
  const double side = 60.0;
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(4.0, 16.0, 2);
  cfg.lmax = 3;
  cfg.subtract_self_pairs = true;

  std::vector<double> vals[3];
  for (int r = 0; r < nreal; ++r) {
    const s::Catalog cat =
        s::uniform_box(1500, s::Aabb::cube(side), 900 + r);
    const auto prim =
        interior_primaries(cat, s::Aabb::cube(side), cfg.bins.rmax());
    ASSERT_GT(prim.size(), 100u);
    const c::ZetaResult res = c::Engine(cfg).run(cat, &prim);
    const double norm = res.sum_primary_weight;
    vals[0].push_back(res.zeta_m(0, 1, 1, 1, 0).real() / norm);
    vals[1].push_back(res.zeta_m(0, 1, 2, 2, 1).real() / norm);
    vals[2].push_back(res.zeta_m(1, 1, 3, 1, 1).imag() / norm);
  }
  for (auto& v : vals) {
    const double mean = m::mean(v);
    const double sem = m::stddev(v) / std::sqrt(static_cast<double>(nreal));
    EXPECT_LT(std::abs(mean), 5.0 * sem + 1e-12);
  }
}

TEST(Physics, RandomCatalogMonopoleMatchesDensity) {
  // l = l' = 0 with full shells: a_00(b) = counts(b)/sqrt(4pi), and for
  // b1 != b2 the counts are nearly independent Poisson =>
  // E[zeta^0_00(b1,b2)] per primary ~ (nbar V_b1)(nbar V_b2)/(4pi).
  const double side = 80.0;
  const std::size_t n = 12000;
  const s::Catalog cat = s::uniform_box(n, s::Aabb::cube(side), 4242);
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(3.0, 12.0, 2);
  cfg.lmax = 0;
  const auto prim =
      interior_primaries(cat, s::Aabb::cube(side), cfg.bins.rmax());
  ASSERT_GT(prim.size(), 1000u);
  const c::ZetaResult res = c::Engine(cfg).run(cat, &prim);
  const double nbar = static_cast<double>(n) / (side * side * side);
  const double expect = nbar * res.bins.shell_volume(0) * nbar *
                        res.bins.shell_volume(1) / (4.0 * M_PI);
  const double got = res.zeta_m(0, 1, 0, 0, 0).real() / res.sum_primary_weight;
  EXPECT_NEAR(got / expect, 1.0, 0.1);
}

TEST(Physics, RandomCatalogPairCountsMatchShellVolumes) {
  const double side = 90.0;
  const std::size_t n = 30000;
  const s::Catalog cat = s::uniform_box(n, s::Aabb::cube(side), 31415);
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 14.0, 4);
  cfg.lmax = 0;
  const auto prim =
      interior_primaries(cat, s::Aabb::cube(side), cfg.bins.rmax());
  const c::ZetaResult res = c::Engine(cfg).run(cat, &prim);
  const double nbar = static_cast<double>(n) / (side * side * side);
  for (int b = 0; b < 4; ++b) {
    const double expect =
        res.sum_primary_weight * nbar * res.bins.shell_volume(b);
    EXPECT_NEAR(res.pair_counts[b] / expect, 1.0, 0.05) << "bin " << b;
  }
}

TEST(Physics, LevyFlightTwoPointFunctionIsPowerLaw) {
  // Rayleigh-Levy flights cluster with xi(r) ~ r^(alpha-3) in the walk
  // regime r0 << r << r0 * chain^(1/alpha); finite chains and wrapping
  // steepen the tail, so accept a slope band around the ideal -1.5.
  const double side = 100.0;
  const s::Aabb box = s::Aabb::cube(side);
  s::LevyFlightParams p;
  p.r0 = 0.2;
  p.alpha = 1.5;
  p.chain_len = 256;
  const s::Catalog cat = s::levy_flight(30000, box, 31, p);

  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(0.5, 8.0, 6, c::BinSpacing::kLog);
  cfg.lmax = 0;
  const auto prim = interior_primaries(cat, box, cfg.bins.rmax());
  ASSERT_GT(prim.size(), 5000u);
  const c::ZetaResult res = c::Engine(cfg).run(cat, &prim);

  const double nbar = static_cast<double>(cat.size()) / box.volume();
  std::vector<double> r, xi;
  for (int b = 0; b < 6; ++b) {
    const double count = res.pair_counts[b];
    const double rr = res.sum_primary_weight * nbar * res.bins.shell_volume(b);
    const double x = count / rr - 1.0;
    if (x > 0) {
      r.push_back(res.bins.center(b));
      xi.push_back(x);
    }
  }
  ASSERT_GE(r.size(), 4u);
  const auto fit = m::fit_power_law(r, xi);
  EXPECT_LT(fit.exponent, -1.0);
  EXPECT_GT(fit.exponent, -2.6);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_GT(xi[0], 10.0);  // strongly clustered at small r
}

TEST(Physics, LognormalXiReflectsInputPower) {
  // The lognormal mock's measured xi(r) should be positive and decreasing
  // on intermediate scales, consistent with the input spectrum.
  mo::LognormalParams lp;
  lp.grid_n = 64;
  lp.box_side = 700.0;
  lp.nbar = 3e-4;
  lp.seed = 77;
  const mo::LognormalMock mock =
      mo::lognormal_catalog(lp, mo::BaoPowerSpectrum{});
  ASSERT_GT(mock.galaxies.size(), 50000u);

  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(10.0, 90.0, 4);
  cfg.lmax = 0;
  cfg.tree.precision = c::TreePrecision::kMixed;
  const auto prim = interior_primaries(
      mock.galaxies, s::Aabb::cube(lp.box_side), cfg.bins.rmax());
  const c::ZetaResult res = c::Engine(cfg).run(mock.galaxies, &prim);
  const double nbar = static_cast<double>(mock.galaxies.size()) /
                      (lp.box_side * lp.box_side * lp.box_side);
  // The grid is band-limited (Nyquist ~0.29 h/Mpc, cell ~11 Mpc/h), so the
  // realized xi is smoothed relative to the continuum input; require clear
  // positive clustering with the right falloff rather than exact amplitude.
  const double xi0 = res.xi_l(0, 0, nbar);
  const double xi3 = res.xi_l(0, 3, nbar);
  EXPECT_GT(xi0, 0.05);
  EXPECT_GT(xi0, 2.0 * std::abs(xi3));
  EXPECT_GT(xi3, -0.05);
}

TEST(Physics, RsdInducesQuadrupole) {
  // Kaiser limit: coherent infall boosts the monopole and makes the
  // quadrupole of xi negative (with the P_2(mu) convention and xi_2 =
  // (2l+1)/RR sum P_l(mu) - 0); in real space xi_2 ~ 0.
  mo::LognormalParams lp;
  lp.grid_n = 64;
  lp.box_side = 600.0;
  lp.nbar = 4e-4;
  lp.seed = 13;
  const mo::LognormalMock mock =
      mo::lognormal_catalog(lp, mo::BaoPowerSpectrum{});

  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(15.0, 60.0, 3);
  cfg.lmax = 4;
  cfg.tree.precision = c::TreePrecision::kMixed;
  const double nbar = static_cast<double>(mock.galaxies.size()) /
                      (lp.box_side * lp.box_side * lp.box_side);
  const s::Aabb box = s::Aabb::cube(lp.box_side);
  const auto prim = interior_primaries(mock.galaxies, box, cfg.bins.rmax());

  const c::ZetaResult real_space = c::Engine(cfg).run(mock.galaxies, &prim);

  s::Catalog zspace = mock.galaxies;
  mo::apply_plane_parallel_rsd(zspace, mock.psi_z, 1.0, lp.box_side);
  const auto prim_z = interior_primaries(zspace, box, cfg.bins.rmax());
  const c::ZetaResult red_space = c::Engine(cfg).run(zspace, &prim_z);

  double xi2_real = 0, xi2_red = 0, xi0_red = 0;
  for (int b = 0; b < 3; ++b) {
    xi2_real += std::abs(real_space.xi_l(2, b, nbar));
    xi2_red += red_space.xi_l(2, b, nbar);
    xi0_red += red_space.xi_l(0, b, nbar);
  }
  EXPECT_GT(xi0_red, 0.0);
  // Redshift space: quadrupole clearly nonzero and larger in magnitude
  // than the real-space residual.
  EXPECT_GT(std::abs(xi2_red), 2.0 * xi2_real);
}

TEST(Physics, RsdInducesAnisotropicZetaStructure) {
  // The m != 0 anisotropic 3PCF coefficients acquire signal under RSD
  // relative to the isotropic catalog (the paper's core science claim:
  // anisotropy carries the growth-rate information).
  mo::LognormalParams lp;
  lp.grid_n = 32;
  lp.box_side = 300.0;
  lp.nbar = 1e-3;
  lp.seed = 21;
  const mo::LognormalMock mock =
      mo::lognormal_catalog(lp, mo::BaoPowerSpectrum{});

  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(8.0, 40.0, 2);
  cfg.lmax = 2;
  cfg.subtract_self_pairs = true;

  s::Catalog zspace = mock.galaxies;
  mo::apply_plane_parallel_rsd(zspace, mock.psi_z, 1.5, lp.box_side);

  const c::ZetaResult real_space = c::Engine(cfg).run(mock.galaxies);
  const c::ZetaResult red_space = c::Engine(cfg).run(zspace);

  // Scale-free m-structure diagnostic on the (l, l') = (2, 2) block.
  auto m_asymmetry = [](const c::ZetaResult& r) {
    const double z0 = r.zeta_m(0, 1, 2, 2, 0).real() / r.sum_primary_weight;
    const double z1 = r.zeta_m(0, 1, 2, 2, 1).real() / r.sum_primary_weight;
    const double z2 = r.zeta_m(0, 1, 2, 2, 2).real() / r.sum_primary_weight;
    const double scale = std::abs(z0) + std::abs(z1) + std::abs(z2) + 1e-30;
    return (std::abs(z0 - z1) + std::abs(z1 - z2)) / scale;
  };
  const double a_real = m_asymmetry(real_space);
  const double a_red = m_asymmetry(red_space);
  EXPECT_GT(std::abs(a_red - a_real), 1e-3);
}
