// RNG: reproducibility, stream independence, distribution moments.
#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"

using galactos::math::Rng;

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(99);
  Rng c1 = root.split(0);
  Rng c2 = root.split(1);
  Rng c1b = Rng(99).split(0);
  for (int i = 0; i < 100; ++i) {
    const auto v1 = c1.next_u64();
    EXPECT_EQ(v1, c1b.next_u64());
    EXPECT_NE(v1, c2.next_u64());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(6);
  const int n = 200000;
  double s = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    s += u;
    s2 += u * u;
  }
  EXPECT_NEAR(s / n, 0.5, 5e-3);
  EXPECT_NEAR(s2 / n - 0.25, 1.0 / 12, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  const int n = 200000;
  double s = 0, s2 = 0, s3 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
    s3 += x * x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
  EXPECT_NEAR(s3 / n, 0.0, 0.1);
}

TEST(Rng, PoissonMomentsSmallLambda) {
  Rng rng(8);
  const double lambda = 3.7;
  const int n = 100000;
  double s = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.poisson(lambda));
    s += k;
    s2 += k * k;
  }
  const double mean = s / n;
  EXPECT_NEAR(mean, lambda, 0.05);
  EXPECT_NEAR(s2 / n - mean * mean, lambda, 0.15);
}

TEST(Rng, PoissonMomentsLargeLambda) {
  Rng rng(9);
  const double lambda = 250.0;
  const int n = 50000;
  double s = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.poisson(lambda));
    s += k;
    s2 += k * k;
  }
  const double mean = s / n;
  EXPECT_NEAR(mean / lambda, 1.0, 0.01);
  EXPECT_NEAR((s2 / n - mean * mean) / lambda, 1.0, 0.05);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, UnitVectorIsUnitAndIsotropic) {
  Rng rng(11);
  const int n = 50000;
  double sx = 0, sy = 0, sz = 0;
  for (int i = 0; i < n; ++i) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    EXPECT_NEAR(x * x + y * y + z * z, 1.0, 1e-12);
    sx += x;
    sy += y;
    sz += z;
  }
  EXPECT_NEAR(sx / n, 0.0, 0.02);
  EXPECT_NEAR(sy / n, 0.0, 0.02);
  EXPECT_NEAR(sz / n, 0.0, 0.02);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
  // All residues hit for a small modulus.
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_u64(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}
