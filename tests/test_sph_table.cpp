// Spherical-harmonic machinery: monomial maps, Y_lm tables, orthonormality,
// the addition theorem, power-sum reconstruction and the recurrence
// evaluator — the math the whole estimator rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "math/legendre.hpp"
#include "math/rng.hpp"
#include "math/sph_table.hpp"
#include "math/ylm_recurrence.hpp"

namespace m = galactos::math;
using cd = std::complex<double>;

namespace {

// Reference Y_lm via associated Legendre + explicit phase.
cd ylm_reference(int l, int mm, double theta, double phi) {
  const int ma = std::abs(mm);
  const double norm = std::sqrt((2.0 * l + 1) / (4 * M_PI) *
                                m::factorial(l - ma) / m::factorial(l + ma));
  const double p = m::assoc_legendre_p(l, ma, std::cos(theta));
  cd y = norm * p * std::exp(cd(0.0, ma * phi));
  if (mm < 0) {
    y = std::conj(y);
    if (ma % 2 == 1) y = -y;
  }
  return y;
}

}  // namespace

TEST(MonomialMap, CountMatchesFormula) {
  for (int lmax : {0, 1, 2, 5, 10, 12}) {
    m::MonomialMap map(lmax);
    EXPECT_EQ(map.size(), m::monomial_count(lmax));
  }
  EXPECT_EQ(m::monomial_count(10), 286);  // the paper's number
}

TEST(MonomialMap, IndexRoundTrip) {
  m::MonomialMap map(10);
  for (int i = 0; i < map.size(); ++i) {
    const auto [a, b, c] = map.abc(i);
    EXPECT_EQ(map.index(a, b, c), i);
    EXPECT_LE(a + b + c, 10);
  }
}

TEST(MonomialMap, OrderingIsNestedLoops) {
  // The kernel relies on the exact a->b->c nesting.
  m::MonomialMap map(4);
  int idx = 0;
  for (int a = 0; a <= 4; ++a)
    for (int b = 0; a + b <= 4; ++b)
      for (int c = 0; a + b + c <= 4; ++c) {
        const auto t = map.abc(idx);
        EXPECT_EQ(t.a, a);
        EXPECT_EQ(t.b, b);
        EXPECT_EQ(t.c, c);
        ++idx;
      }
}

TEST(SphHarmTable, MatchesReferenceOnRandomDirections) {
  const int lmax = 10;
  m::SphHarmTable table(lmax);
  m::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const double theta = std::acos(2 * rng.uniform() - 1);
    const double phi = 2 * M_PI * rng.uniform();
    const double x = std::sin(theta) * std::cos(phi);
    const double y = std::sin(theta) * std::sin(phi);
    const double z = std::cos(theta);
    for (int l = 0; l <= lmax; ++l)
      for (int mm = -l; mm <= l; ++mm) {
        const cd got = table.eval(l, mm, x, y, z);
        const cd ref = ylm_reference(l, mm, theta, phi);
        EXPECT_NEAR(got.real(), ref.real(), 1e-10)
            << "l=" << l << " m=" << mm;
        EXPECT_NEAR(got.imag(), ref.imag(), 1e-10)
            << "l=" << l << " m=" << mm;
      }
  }
}

TEST(SphHarmTable, EvalAllConsistentWithEval) {
  const int lmax = 8;
  m::SphHarmTable table(lmax);
  std::vector<cd> ylm(m::nlm(lmax));
  m::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    table.eval_all(x, y, z, ylm.data());
    for (int l = 0; l <= lmax; ++l)
      for (int mm = 0; mm <= l; ++mm) {
        const cd a = ylm[m::lm_index(l, mm)];
        const cd b = table.eval(l, mm, x, y, z);
        EXPECT_NEAR(std::abs(a - b), 0.0, 1e-12);
      }
  }
}

TEST(SphHarmTable, OrthonormalityUnderQuadrature) {
  // Gauss-Legendre in cos(theta) x uniform in phi integrates spherical
  // harmonics of degree <= lmax exactly.
  const int lmax = 6;
  m::SphHarmTable table(lmax);
  std::vector<double> nodes, weights;
  m::gauss_legendre(lmax + 2, nodes, weights);
  const int nphi = 4 * lmax + 4;

  for (int l1 = 0; l1 <= lmax; ++l1)
    for (int m1 = -l1; m1 <= l1; ++m1)
      for (int l2 = 0; l2 <= lmax; ++l2)
        for (int m2 = -l2; m2 <= l2; ++m2) {
          cd s{0, 0};
          for (std::size_t i = 0; i < nodes.size(); ++i) {
            const double z = nodes[i];
            const double st = std::sqrt(1 - z * z);
            for (int j = 0; j < nphi; ++j) {
              const double phi = 2 * M_PI * j / nphi;
              const double x = st * std::cos(phi), y = st * std::sin(phi);
              s += weights[i] * (2 * M_PI / nphi) *
                   table.eval(l1, m1, x, y, z) *
                   std::conj(table.eval(l2, m2, x, y, z));
            }
          }
          const double exact = (l1 == l2 && m1 == m2) ? 1.0 : 0.0;
          EXPECT_NEAR(s.real(), exact, 1e-10)
              << l1 << "," << m1 << " vs " << l2 << "," << m2;
          EXPECT_NEAR(s.imag(), 0.0, 1e-10);
        }
}

TEST(SphHarmTable, AdditionTheorem) {
  // sum_m Y_lm(u1) Y*_lm(u2) = (2l+1)/(4pi) P_l(u1 . u2).
  const int lmax = 10;
  m::SphHarmTable table(lmax);
  m::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    double x1, y1, z1, x2, y2, z2;
    rng.unit_vector(x1, y1, z1);
    rng.unit_vector(x2, y2, z2);
    const double mu = x1 * x2 + y1 * y2 + z1 * z2;
    for (int l = 0; l <= lmax; ++l) {
      cd s{0, 0};
      for (int mm = -l; mm <= l; ++mm)
        s += table.eval(l, mm, x1, y1, z1) *
             std::conj(table.eval(l, mm, x2, y2, z2));
      const double exact = (2 * l + 1) / (4 * M_PI) * m::legendre_p(l, mu);
      EXPECT_NEAR(s.real(), exact, 1e-10) << "l=" << l;
      EXPECT_NEAR(s.imag(), 0.0, 1e-10) << "l=" << l;
    }
  }
}

TEST(SphHarmTable, ConjugationSymmetry) {
  m::SphHarmTable table(6);
  m::Rng rng(3);
  double x, y, z;
  rng.unit_vector(x, y, z);
  for (int l = 0; l <= 6; ++l)
    for (int mm = 1; mm <= l; ++mm) {
      const cd plus = table.eval(l, mm, x, y, z);
      const cd minus = table.eval(l, -mm, x, y, z);
      const cd expect = (mm % 2 ? -1.0 : 1.0) * std::conj(plus);
      EXPECT_NEAR(std::abs(minus - expect), 0.0, 1e-12);
    }
}

TEST(SphHarmTable, AlmFromPowerSumsMatchesDirectSum) {
  // Build power sums from a small set of weighted directions; a_lm from the
  // table must equal sum_j w_j conj(Y_lm(u_j)).
  const int lmax = 8;
  m::SphHarmTable table(lmax);
  const m::MonomialMap& mono = table.monomials();
  m::Rng rng(19);

  const int npts = 37;
  std::vector<double> S(mono.size(), 0.0);
  std::vector<cd> direct(m::nlm(lmax), cd{0, 0});
  for (int j = 0; j < npts; ++j) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    const double w = rng.uniform(0.5, 2.0);
    for (int t = 0; t < mono.size(); ++t) {
      const auto [a, b, c] = mono.abc(t);
      S[t] += w * std::pow(x, a) * std::pow(y, b) * std::pow(z, c);
    }
    for (int l = 0; l <= lmax; ++l)
      for (int mm = 0; mm <= l; ++mm)
        direct[m::lm_index(l, mm)] += w * std::conj(table.eval(l, mm, x, y, z));
  }
  std::vector<cd> alm(m::nlm(lmax));
  table.alm_from_power_sums(S.data(), alm.data());
  for (int i = 0; i < m::nlm(lmax); ++i)
    EXPECT_NEAR(std::abs(alm[i] - direct[i]), 0.0, 1e-9) << "lm flat " << i;
}

TEST(YlmRecurrence, MatchesTable) {
  const int lmax = 12;
  m::SphHarmTable table(lmax);
  m::YlmRecurrence rec(lmax);
  std::vector<cd> ylm(m::nlm(lmax));
  m::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    rec.eval_all(x, y, z, ylm.data());
    for (int l = 0; l <= lmax; ++l)
      for (int mm = 0; mm <= l; ++mm) {
        const cd ref = table.eval(l, mm, x, y, z);
        EXPECT_NEAR(std::abs(ylm[m::lm_index(l, mm)] - ref), 0.0, 1e-10)
            << "l=" << l << " m=" << mm;
      }
  }
}

TEST(YlmRecurrence, PolesAreFinite) {
  m::YlmRecurrence rec(10);
  std::vector<cd> ylm(m::nlm(10));
  for (double z : {1.0, -1.0}) {
    rec.eval_all(0.0, 0.0, z, ylm.data());
    for (const cd& v : ylm) {
      EXPECT_TRUE(std::isfinite(v.real()));
      EXPECT_TRUE(std::isfinite(v.imag()));
    }
    // At the poles only m == 0 survives.
    for (int l = 0; l <= 10; ++l)
      for (int mm = 1; mm <= l; ++mm)
        EXPECT_NEAR(std::abs(ylm[m::lm_index(l, mm)]), 0.0, 1e-12);
  }
}
