// Engine staged pipeline (build_index → extend_with_secondaries →
// run_indexed):
//   * with no secondaries the staged path must be BITWISE identical to
//     Engine::run over the same catalog, for every index/precision/
//     traversal combination (it is the same code over the same index);
//   * with halo points indexed as secondaries, the pair set must equal a
//     fused run over the combined catalog restricted to owned primaries —
//     only FP accumulation order may differ (candidate order changes), so
//     results match to tight tolerance and pair counts match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace c = galactos::core;
namespace s = galactos::sim;
using galactos::testing::expect_results_match;

namespace {

struct StagedCase {
  c::NeighborIndex index;
  c::TreePrecision precision;
  c::TraversalMode traversal;
};

std::string case_name(const ::testing::TestParamInfo<StagedCase>& info) {
  std::string n;
  n += info.param.index == c::NeighborIndex::kKdTree ? "KdTree" : "CellGrid";
  n += info.param.precision == c::TreePrecision::kDouble ? "Double" : "Mixed";
  n += info.param.traversal == c::TraversalMode::kLeafBlocked ? "LeafBlocked"
                                                              : "PerPrimary";
  return n;
}

c::EngineConfig make_config(const StagedCase& p) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 16.0, 4);
  cfg.lmax = 4;
  cfg.threads = 1;
  cfg.tree.index = p.index;
  cfg.tree.precision = p.precision;
  cfg.tree.traversal = p.traversal;
  return cfg;
}

}  // namespace

class StagedEngine : public ::testing::TestWithParam<StagedCase> {};

TEST_P(StagedEngine, NoSecondariesBitwiseMatchesRun) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog cat = s::uniform_box(900, s::Aabb::cube(50), 61);

  const c::Engine engine(cfg);
  const c::ZetaResult fused = engine.run(cat);

  c::Engine::Staged staged = engine.build_index(cat);
  c::EngineStats stats;
  const c::ZetaResult piped = staged.run_indexed(nullptr, &stats);

  expect_results_match(piped, fused, 0.0, 0.0);  // bitwise
  EXPECT_EQ(piped.n_pairs, fused.n_pairs);
  EXPECT_GT(stats.pairs, 0u);
}

TEST_P(StagedEngine, SecondariesMatchFusedCombinedRun) {
  const c::EngineConfig cfg = make_config(GetParam());
  // Owned points in the left half of the box, halo in the right half with
  // plenty of cross-boundary pairs inside R_max.
  const s::Catalog owned =
      s::uniform_box(500, s::Aabb{{0, 0, 0}, {25, 50, 50}}, 62);
  const s::Catalog halo =
      s::uniform_box(500, s::Aabb{{25, 0, 0}, {50, 50, 50}}, 63);

  s::Catalog combined = owned;
  combined.append(halo);
  std::vector<std::int64_t> primaries(owned.size());
  std::iota(primaries.begin(), primaries.end(), 0);

  const c::Engine engine(cfg);
  c::EngineStats fused_stats;
  const c::ZetaResult fused = engine.run(combined, &primaries, &fused_stats);

  c::Engine::Staged staged = engine.build_index(owned);
  staged.extend_with_secondaries(halo);
  c::EngineStats staged_stats;
  const c::ZetaResult piped = staged.run_indexed(nullptr, &staged_stats);

  // Identical pair sets (candidate order may differ → FP tolerance).
  EXPECT_EQ(staged_stats.pairs, fused_stats.pairs);
  expect_results_match(piped, fused, 1e-12, 1e-12);
}

TEST_P(StagedEngine, SecondariesNeverActAsPrimaries) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned = s::uniform_box(300, s::Aabb::cube(30), 64);
  const s::Catalog halo = s::uniform_box(400, s::Aabb::cube(30), 65);

  const c::Engine engine(cfg);
  c::Engine::Staged staged = engine.build_index(owned);
  staged.extend_with_secondaries(halo);
  const c::ZetaResult r = staged.run_indexed();
  EXPECT_EQ(r.n_primaries, owned.size());
}

// Two-pass pipeline, no secondaries ever indexed: run_owned_pass +
// run_secondary_pass must reproduce run_indexed (and hence Engine::run)
// BITWISE — pass 2 touches nothing, and the merge runs in the same
// thread-id order.
TEST_P(StagedEngine, TwoPassNoSecondariesBitwiseMatchesRun) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog cat = s::uniform_box(900, s::Aabb::cube(50), 61);

  const c::Engine engine(cfg);
  const c::ZetaResult fused = engine.run(cat);

  c::Engine::Staged staged = engine.build_index(cat);
  EXPECT_FALSE(staged.owned_pass_pending());
  c::EngineStats pass1, pass2;
  staged.run_owned_pass(nullptr, &pass1);
  EXPECT_TRUE(staged.owned_pass_pending());
  const c::ZetaResult piped = staged.run_secondary_pass(&pass2);
  EXPECT_FALSE(staged.owned_pass_pending());

  expect_results_match(piped, fused, 0.0, 0.0);  // bitwise
  EXPECT_EQ(piped.n_pairs, fused.n_pairs);
  EXPECT_GT(pass1.pairs, 0u);
  EXPECT_EQ(pass2.pairs, 0u);  // no secondaries → no new pairs
}

// Two-pass with a genuine halo: the owned pass sees only owned points, the
// secondary pass adds the owned-vs-halo completion. Must agree with the
// fused staged run (union candidates per leaf) to tight tolerance, with
// exactly the same physical pair count split across the passes.
TEST_P(StagedEngine, TwoPassWithSecondariesMatchesRunIndexed) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned =
      s::uniform_box(500, s::Aabb{{0, 0, 0}, {25, 50, 50}}, 62);
  const s::Catalog halo =
      s::uniform_box(500, s::Aabb{{25, 0, 0}, {50, 50, 50}}, 63);

  const c::Engine engine(cfg);
  c::Engine::Staged fused_staged = engine.build_index(owned);
  fused_staged.extend_with_secondaries(halo);
  c::EngineStats fused_stats;
  const c::ZetaResult fused = fused_staged.run_indexed(nullptr, &fused_stats);

  c::Engine::Staged staged = engine.build_index(owned);
  c::EngineStats pass1, pass2;
  staged.run_owned_pass(nullptr, &pass1);
  staged.extend_with_secondaries(halo);
  const c::ZetaResult piped = staged.run_secondary_pass(&pass2);

  EXPECT_EQ(pass1.pairs + pass2.pairs, fused_stats.pairs);
  EXPECT_GT(pass2.pairs, 0u);  // the halo really contributes
  EXPECT_EQ(piped.n_pairs, fused.n_pairs);
  EXPECT_EQ(piped.n_primaries, fused.n_primaries);
  expect_results_match(piped, fused, 1e-11, 1e-11);
}

// Halo points scattered INSIDE the owned volume (no clean boundary): the
// completion term must stay exact even when almost every leaf is affected.
TEST_P(StagedEngine, TwoPassInterleavedHaloMatchesRunIndexed) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned = s::uniform_box(400, s::Aabb::cube(40), 68);
  const s::Catalog halo = s::uniform_box(300, s::Aabb::cube(40), 69);

  const c::Engine engine(cfg);
  c::Engine::Staged fused_staged = engine.build_index(owned);
  fused_staged.extend_with_secondaries(halo);
  const c::ZetaResult fused = fused_staged.run_indexed();

  c::Engine::Staged staged = engine.build_index(owned);
  staged.run_owned_pass();
  staged.extend_with_secondaries(halo);
  const c::ZetaResult piped = staged.run_secondary_pass();

  expect_results_match(piped, fused, 1e-11, 1e-11);
}

// The SecondaryBound hint (runner: "all halo lies outside my domain box")
// lets pass 1 snapshot boundary power sums so pass 2 skips the owned
// kernel re-run — the result must be IDENTICAL to the hint-less two-pass
// (alm_from_power_sums over the same bits is the same arithmetic).
TEST_P(StagedEngine, TwoPassSecondaryBoundHintMatchesNoHint) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned =
      s::uniform_box(500, s::Aabb{{0, 0, 0}, {25, 50, 50}}, 62);
  const s::Catalog halo =
      s::uniform_box(500, s::Aabb{{25, 0, 0}, {50, 50, 50}}, 63);
  const c::Engine engine(cfg);

  c::Engine::Staged plain = engine.build_index(owned);
  plain.run_owned_pass();
  plain.extend_with_secondaries(halo);
  const c::ZetaResult no_hint = plain.run_secondary_pass();

  const c::Engine::SecondaryBound bound{{0, 0, 0}, {25, 50, 50}};
  c::Engine::Staged hinted = engine.build_index(owned);
  hinted.run_owned_pass(nullptr, nullptr, {}, &bound);
  hinted.extend_with_secondaries(halo);
  const c::ZetaResult with_hint = hinted.run_secondary_pass();

  expect_results_match(with_hint, no_hint, 0.0, 0.0);  // bitwise
  EXPECT_EQ(with_hint.n_pairs, no_hint.n_pairs);
}

// A VIOLATED promise (secondaries inside the bound box) must cost time,
// never correctness: unsnapshotted primaries take the recompute fallback.
TEST_P(StagedEngine, TwoPassViolatedBoundFallsBackExactly) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned = s::uniform_box(400, s::Aabb::cube(40), 68);
  const s::Catalog halo = s::uniform_box(300, s::Aabb::cube(40), 69);
  const c::Engine engine(cfg);

  c::Engine::Staged fused_staged = engine.build_index(owned);
  fused_staged.extend_with_secondaries(halo);
  const c::ZetaResult fused = fused_staged.run_indexed();

  // Promise a huge box (every primary is deep interior → nothing is
  // snapshotted) that every secondary then violates by lying inside it.
  const c::Engine::SecondaryBound bound{{-200, -200, -200}, {200, 200, 200}};
  c::Engine::Staged staged = engine.build_index(owned);
  staged.run_owned_pass(nullptr, nullptr, {}, &bound);
  staged.extend_with_secondaries(halo);
  const c::ZetaResult piped = staged.run_secondary_pass();

  expect_results_match(piped, fused, 1e-11, 1e-11);
}

// A primary subset must restrict both passes identically.
TEST_P(StagedEngine, TwoPassWithPrimarySubset) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned =
      s::uniform_box(400, s::Aabb{{0, 0, 0}, {25, 50, 50}}, 71);
  const s::Catalog halo =
      s::uniform_box(400, s::Aabb{{25, 0, 0}, {50, 50, 50}}, 72);
  std::vector<std::int64_t> primaries;
  for (std::size_t i = 0; i < owned.size(); i += 3)
    primaries.push_back(static_cast<std::int64_t>(i));

  const c::Engine engine(cfg);
  c::Engine::Staged fused_staged = engine.build_index(owned);
  fused_staged.extend_with_secondaries(halo);
  const c::ZetaResult fused = fused_staged.run_indexed(&primaries);

  c::Engine::Staged staged = engine.build_index(owned);
  staged.run_owned_pass(&primaries);
  staged.extend_with_secondaries(halo);
  const c::ZetaResult piped = staged.run_secondary_pass();

  EXPECT_EQ(piped.n_primaries, primaries.size());
  expect_results_match(piped, fused, 1e-11, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, StagedEngine,
    ::testing::Values(
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kDouble,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kDouble,
                   c::TraversalMode::kPerPrimary},
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kMixed,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kDouble,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kMixed,
                   c::TraversalMode::kPerPrimary},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kMixed,
                   c::TraversalMode::kLeafBlocked}),
    case_name);

TEST(StagedEngineApi, EmptyHaloIsNoop) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(200, s::Aabb::cube(20), 66);
  const c::Engine engine(cfg);

  c::Engine::Staged staged = engine.build_index(cat);
  staged.extend_with_secondaries(s::Catalog{});
  expect_results_match(staged.run_indexed(), engine.run(cat), 0.0, 0.0);
}

TEST(StagedEngineApi, MisuseThrows) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(100, s::Aabb::cube(15), 67);
  const s::Catalog halo = s::uniform_box(50, s::Aabb::cube(15), 68);
  const c::Engine engine(cfg);

  c::Engine::Staged empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.run_indexed(), std::logic_error);
  EXPECT_THROW(empty.extend_with_secondaries(halo), std::logic_error);
  EXPECT_THROW(engine.build_index(s::Catalog{}), std::logic_error);

  c::Engine::Staged staged = engine.build_index(cat);
  staged.extend_with_secondaries(halo);
  EXPECT_THROW(staged.extend_with_secondaries(halo), std::logic_error);

  // Primaries must index the OWNED catalog only.
  std::vector<std::int64_t> bad{static_cast<std::int64_t>(cat.size())};
  EXPECT_THROW(staged.run_indexed(&bad), std::logic_error);
}

TEST(StagedEngineApi, TwoPassMisuseThrows) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(100, s::Aabb::cube(15), 73);
  const c::Engine engine(cfg);

  c::Engine::Staged empty;
  EXPECT_THROW(empty.run_owned_pass(), std::logic_error);
  EXPECT_THROW(empty.run_secondary_pass(), std::logic_error);

  c::Engine::Staged staged = engine.build_index(cat);
  // Secondary pass before any owned pass.
  EXPECT_THROW(staged.run_secondary_pass(), std::logic_error);
  staged.run_owned_pass();
  // Owned pass twice without completing; fused run mid-pipeline.
  EXPECT_THROW(staged.run_owned_pass(), std::logic_error);
  EXPECT_THROW(staged.run_indexed(), std::logic_error);
  (void)staged.run_secondary_pass();
  // The parked state was consumed: a fresh round is legal again.
  staged.run_owned_pass();
  (void)staged.run_secondary_pass();
}

// The owned pass invokes the caller's poll hook between leaf batches — the
// distributed runner uses it to progress outstanding halo receives.
TEST(StagedEngineApi, OwnedPassInvokesPollHook) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 10.0, 3);
  cfg.lmax = 2;
  cfg.threads = 1;
  cfg.tree.leaf_size = 8;  // plenty of leaves so the stride fires repeatedly
  const s::Catalog cat = s::uniform_box(3000, s::Aabb::cube(60), 74);
  const c::Engine engine(cfg);

  c::Engine::Staged staged = engine.build_index(cat);
  int polls = 0;
  staged.run_owned_pass(nullptr, nullptr, [&polls] { ++polls; });
  EXPECT_GT(polls, 0);

  const c::ZetaResult piped = staged.run_secondary_pass();
  expect_results_match(piped, engine.run(cat), 0.0, 0.0);  // still bitwise
}

// The self-pair correction splits additively across the passes: owned
// self terms in pass 1, halo self terms in pass 2.
TEST(StagedEngineApi, TwoPassSubtractSelfPairsMatchesFused) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 10.0, 3);
  cfg.lmax = 3;
  cfg.threads = 1;
  cfg.subtract_self_pairs = true;
  const s::Catalog owned =
      s::uniform_box(250, s::Aabb{{0, 0, 0}, {15, 30, 30}}, 75);
  const s::Catalog halo =
      s::uniform_box(250, s::Aabb{{15, 0, 0}, {30, 30, 30}}, 76);
  const c::Engine engine(cfg);

  c::Engine::Staged fused_staged = engine.build_index(owned);
  fused_staged.extend_with_secondaries(halo);
  const c::ZetaResult fused = fused_staged.run_indexed();

  c::Engine::Staged staged = engine.build_index(owned);
  staged.run_owned_pass();
  staged.extend_with_secondaries(halo);
  const c::ZetaResult piped = staged.run_secondary_pass();

  expect_results_match(piped, fused, 1e-11, 1e-11);
}

// extend_with_secondaries(empty) between the passes is a no-op and the
// two-pass result stays bitwise equal to the fused no-secondary run.
TEST(StagedEngineApi, TwoPassEmptyHaloIsBitwiseNoop) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(200, s::Aabb::cube(20), 66);
  const c::Engine engine(cfg);

  c::Engine::Staged staged = engine.build_index(cat);
  staged.run_owned_pass();
  staged.extend_with_secondaries(s::Catalog{});
  expect_results_match(staged.run_secondary_pass(), engine.run(cat), 0.0,
                       0.0);
}
