// Engine staged pipeline (build_index → extend_with_secondaries →
// run_indexed):
//   * with no secondaries the staged path must be BITWISE identical to
//     Engine::run over the same catalog, for every index/precision/
//     traversal combination (it is the same code over the same index);
//   * with halo points indexed as secondaries, the pair set must equal a
//     fused run over the combined catalog restricted to owned primaries —
//     only FP accumulation order may differ (candidate order changes), so
//     results match to tight tolerance and pair counts match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace c = galactos::core;
namespace s = galactos::sim;
using galactos::testing::expect_results_match;

namespace {

struct StagedCase {
  c::NeighborIndex index;
  c::TreePrecision precision;
  c::TraversalMode traversal;
};

std::string case_name(const ::testing::TestParamInfo<StagedCase>& info) {
  std::string n;
  n += info.param.index == c::NeighborIndex::kKdTree ? "KdTree" : "CellGrid";
  n += info.param.precision == c::TreePrecision::kDouble ? "Double" : "Mixed";
  n += info.param.traversal == c::TraversalMode::kLeafBlocked ? "LeafBlocked"
                                                              : "PerPrimary";
  return n;
}

c::EngineConfig make_config(const StagedCase& p) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 16.0, 4);
  cfg.lmax = 4;
  cfg.threads = 1;
  cfg.index = p.index;
  cfg.precision = p.precision;
  cfg.traversal = p.traversal;
  return cfg;
}

}  // namespace

class StagedEngine : public ::testing::TestWithParam<StagedCase> {};

TEST_P(StagedEngine, NoSecondariesBitwiseMatchesRun) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog cat = s::uniform_box(900, s::Aabb::cube(50), 61);

  const c::Engine engine(cfg);
  const c::ZetaResult fused = engine.run(cat);

  c::Engine::Staged staged = engine.build_index(cat);
  c::EngineStats stats;
  const c::ZetaResult piped = staged.run_indexed(nullptr, &stats);

  expect_results_match(piped, fused, 0.0, 0.0);  // bitwise
  EXPECT_EQ(piped.n_pairs, fused.n_pairs);
  EXPECT_GT(stats.pairs, 0u);
}

TEST_P(StagedEngine, SecondariesMatchFusedCombinedRun) {
  const c::EngineConfig cfg = make_config(GetParam());
  // Owned points in the left half of the box, halo in the right half with
  // plenty of cross-boundary pairs inside R_max.
  const s::Catalog owned =
      s::uniform_box(500, s::Aabb{{0, 0, 0}, {25, 50, 50}}, 62);
  const s::Catalog halo =
      s::uniform_box(500, s::Aabb{{25, 0, 0}, {50, 50, 50}}, 63);

  s::Catalog combined = owned;
  combined.append(halo);
  std::vector<std::int64_t> primaries(owned.size());
  std::iota(primaries.begin(), primaries.end(), 0);

  const c::Engine engine(cfg);
  c::EngineStats fused_stats;
  const c::ZetaResult fused = engine.run(combined, &primaries, &fused_stats);

  c::Engine::Staged staged = engine.build_index(owned);
  staged.extend_with_secondaries(halo);
  c::EngineStats staged_stats;
  const c::ZetaResult piped = staged.run_indexed(nullptr, &staged_stats);

  // Identical pair sets (candidate order may differ → FP tolerance).
  EXPECT_EQ(staged_stats.pairs, fused_stats.pairs);
  expect_results_match(piped, fused, 1e-12, 1e-12);
}

TEST_P(StagedEngine, SecondariesNeverActAsPrimaries) {
  const c::EngineConfig cfg = make_config(GetParam());
  const s::Catalog owned = s::uniform_box(300, s::Aabb::cube(30), 64);
  const s::Catalog halo = s::uniform_box(400, s::Aabb::cube(30), 65);

  const c::Engine engine(cfg);
  c::Engine::Staged staged = engine.build_index(owned);
  staged.extend_with_secondaries(halo);
  const c::ZetaResult r = staged.run_indexed();
  EXPECT_EQ(r.n_primaries, owned.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, StagedEngine,
    ::testing::Values(
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kDouble,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kDouble,
                   c::TraversalMode::kPerPrimary},
        StagedCase{c::NeighborIndex::kKdTree, c::TreePrecision::kMixed,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kDouble,
                   c::TraversalMode::kLeafBlocked},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kMixed,
                   c::TraversalMode::kPerPrimary},
        StagedCase{c::NeighborIndex::kCellGrid, c::TreePrecision::kMixed,
                   c::TraversalMode::kLeafBlocked}),
    case_name);

TEST(StagedEngineApi, EmptyHaloIsNoop) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(200, s::Aabb::cube(20), 66);
  const c::Engine engine(cfg);

  c::Engine::Staged staged = engine.build_index(cat);
  staged.extend_with_secondaries(s::Catalog{});
  expect_results_match(staged.run_indexed(), engine.run(cat), 0.0, 0.0);
}

TEST(StagedEngineApi, MisuseThrows) {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.threads = 1;
  const s::Catalog cat = s::uniform_box(100, s::Aabb::cube(15), 67);
  const s::Catalog halo = s::uniform_box(50, s::Aabb::cube(15), 68);
  const c::Engine engine(cfg);

  c::Engine::Staged empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.run_indexed(), std::logic_error);
  EXPECT_THROW(empty.extend_with_secondaries(halo), std::logic_error);
  EXPECT_THROW(engine.build_index(s::Catalog{}), std::logic_error);

  c::Engine::Staged staged = engine.build_index(cat);
  staged.extend_with_secondaries(halo);
  EXPECT_THROW(staged.extend_with_secondaries(halo), std::logic_error);

  // Primaries must index the OWNED catalog only.
  std::vector<std::int64_t> bad{static_cast<std::int64_t>(cat.size())};
  EXPECT_THROW(staged.run_indexed(&bad), std::logic_error);
}
