// Statistics toolbox: descriptive stats, power-law fits, jackknife.
#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace m = galactos::math;

TEST(Stats, MeanVariance) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(m::mean(v), 3.0);
  EXPECT_DOUBLE_EQ(m::variance(v), 2.5);
  EXPECT_DOUBLE_EQ(m::stddev(v), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(m::min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(m::max_of(v), 5.0);
}

TEST(Stats, MeanOfEmptyThrows) {
  std::vector<double> v;
  EXPECT_THROW(m::mean(v), std::logic_error);
}

TEST(Stats, PowerLawFitExact) {
  // y = 3 x^2 exactly.
  std::vector<double> x{1, 2, 4, 8, 16}, y;
  for (double xi : x) y.push_back(3.0 * xi * xi);
  const auto fit = m::fit_power_law(x, y);
  EXPECT_NEAR(fit.amplitude, 3.0, 1e-10);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, PowerLawFitNoisy) {
  m::Rng rng(4);
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(5.0 * std::pow(i, 1.5) * std::exp(0.02 * rng.normal()));
  }
  const auto fit = m::fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 1.5, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Stats, PowerLawRejectsNonPositive) {
  std::vector<double> x{1, 2}, y{1, -1};
  EXPECT_THROW(m::fit_power_law(x, y), std::logic_error);
}

TEST(Stats, JackknifeVarianceOfMeanMatchesClassic) {
  // For the sample mean, delete-one jackknife variance equals s^2/n.
  m::Rng rng(9);
  const int k = 50;
  std::vector<std::vector<double>> samples(k, std::vector<double>(1));
  std::vector<double> flat(k);
  for (int i = 0; i < k; ++i) {
    flat[i] = rng.normal(10.0, 2.0);
    samples[i][0] = flat[i];
  }
  const auto cov = m::jackknife_covariance(samples);
  ASSERT_EQ(cov.size(), 1u);
  EXPECT_NEAR(cov[0], m::variance(flat) / k, 1e-10);
}

TEST(Stats, JackknifeCovarianceSignOfCorrelatedComponents) {
  m::Rng rng(10);
  const int k = 200;
  std::vector<std::vector<double>> samples(k, std::vector<double>(2));
  for (int i = 0; i < k; ++i) {
    const double a = rng.normal();
    samples[i][0] = a + 0.1 * rng.normal();
    samples[i][1] = -a + 0.1 * rng.normal();  // anti-correlated
  }
  const auto cov = m::jackknife_covariance(samples);
  ASSERT_EQ(cov.size(), 4u);
  EXPECT_GT(cov[0], 0.0);
  EXPECT_GT(cov[3], 0.0);
  EXPECT_LT(cov[1], 0.0);
  EXPECT_NEAR(cov[1], cov[2], 1e-15);
}

TEST(Stats, JackknifeNeedsTwoRegions) {
  std::vector<std::vector<double>> one(1, std::vector<double>(3, 1.0));
  EXPECT_THROW(m::jackknife_covariance(one), std::logic_error);
}
