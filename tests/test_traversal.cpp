// Leaf-blocked vs per-primary traversal equivalence (paper §3.3).
//
// The leaf-blocked driver prunes node-vs-node instead of point-vs-node and
// feeds the kernel through batched push_block calls; per-primary pair
// sequences are bitwise identical to the per-primary driver, so the two
// modes may differ only by cross-primary FP reassociation. The sweep
// covers KdTree/CellGrid × double/mixed × plane-parallel/radial LOS ×
// all/subset primaries (the distributed-runner path).
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.hpp"
#include "sim/generators.hpp"
#include "test_helpers.hpp"

namespace c = galactos::core;
namespace s = galactos::sim;
using galactos::testing::expect_results_match;

namespace {

c::EngineConfig traversal_config() {
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(2.0, 18.0, 5);
  cfg.lmax = 4;
  cfg.threads = 3;
  return cfg;
}

// Runs both traversal modes on identical inputs and checks the strong
// equivalences: exact pair counts (identical accepted pair sets) and
// reassociation-level agreement on every output coefficient.
void expect_modes_agree(c::EngineConfig cfg, const s::Catalog& cat,
                        const std::vector<std::int64_t>* primaries) {
  cfg.tree.traversal = c::TraversalMode::kPerPrimary;
  c::EngineStats spp;
  const c::ZetaResult pp = c::Engine(cfg).run(cat, primaries, &spp);
  cfg.tree.traversal = c::TraversalMode::kLeafBlocked;
  c::EngineStats slb;
  const c::ZetaResult lb = c::Engine(cfg).run(cat, primaries, &slb);

  EXPECT_EQ(pp.n_pairs, lb.n_pairs);
  EXPECT_EQ(pp.n_primaries, lb.n_primaries);
  EXPECT_EQ(spp.primaries_skipped, slb.primaries_skipped);
  EXPECT_GE(slb.candidates, slb.pairs);
  expect_results_match(pp, lb, 1e-10, 1e-10);
}

}  // namespace

class TraversalEquivalence
    : public ::testing::TestWithParam<
          std::tuple<c::NeighborIndex, c::TreePrecision, c::LineOfSight,
                     bool>> {};

TEST_P(TraversalEquivalence, LeafBlockedMatchesPerPrimary) {
  const auto [index, precision, los, subset] = GetParam();
  const s::Catalog cat = galactos::testing::clumpy_catalog(900, 60.0, 21);
  c::EngineConfig cfg = traversal_config();
  cfg.tree.index = index;
  cfg.tree.precision = precision;
  cfg.los = los;
  // Observer outside the box so every radial LOS is well defined.
  cfg.observer = {-40.0, -40.0, -40.0};

  std::vector<std::int64_t> prims;
  const std::vector<std::int64_t>* pp = nullptr;
  if (subset) {
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(cat.size());
         i += 3)
      prims.push_back(i);
    pp = &prims;
  }
  expect_modes_agree(cfg, cat, pp);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraversalEquivalence,
    ::testing::Combine(
        ::testing::Values(c::NeighborIndex::kKdTree,
                          c::NeighborIndex::kCellGrid),
        ::testing::Values(c::TreePrecision::kDouble,
                          c::TreePrecision::kMixed),
        ::testing::Values(c::LineOfSight::kPlaneParallelZ,
                          c::LineOfSight::kRadial),
        ::testing::Bool()));

TEST(Traversal, LeafBlockedIsTheDefault) {
  EXPECT_EQ(c::EngineConfig{}.tree.traversal, c::TraversalMode::kLeafBlocked);
}

TEST(Traversal, OddLeafSizesMatch) {
  // Odd leaf sizes and an n that is not a power of two exercise ragged
  // leaves; leaf_size = 1 makes every leaf a single primary (the blocked
  // driver degenerates to per-primary with a box the size of a point).
  const s::Catalog cat = s::uniform_box(257, s::Aabb::cube(40), 22);
  for (int leaf_size : {1, 7, 33}) {
    c::EngineConfig cfg = traversal_config();
    cfg.tree.leaf_size = leaf_size;
    expect_modes_agree(cfg, cat, nullptr);
  }
}

TEST(Traversal, CoincidentPointsMatch) {
  // A clump of exactly coincident galaxies (r2 == 0 pairs must be skipped,
  // and the k-d tree keeps them as one over-full leaf) plus one loner.
  s::Catalog cat;
  for (int i = 0; i < 20; ++i) cat.push_back(5.0, 5.0, 5.0);
  cat.push_back(10.0, 5.0, 5.0);
  c::EngineConfig cfg;
  cfg.bins = c::RadialBins(1.0, 8.0, 2);
  cfg.lmax = 2;
  cfg.tree.leaf_size = 4;
  cfg.threads = 1;  // so the few-leaf fallback keeps the blocked driver
  expect_modes_agree(cfg, cat, nullptr);

  cfg.tree.traversal = c::TraversalMode::kLeafBlocked;
  const c::ZetaResult res = c::Engine(cfg).run(cat);
  EXPECT_EQ(res.n_pairs, 40u);
}

TEST(Traversal, RadialSubsetSkipsPrimaryAtObserver) {
  s::Catalog cat = s::uniform_box(60, s::Aabb::cube(20), 23);
  cat.push_back(0.0, 0.0, 0.0);  // exactly at the observer
  c::EngineConfig cfg = traversal_config();
  cfg.threads = 1;  // so the few-leaf fallback keeps the blocked driver
  cfg.los = c::LineOfSight::kRadial;
  cfg.observer = {0, 0, 0};
  // Stride-2 subset; cat.size() is odd so it includes the observer point.
  std::vector<std::int64_t> prims;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(cat.size());
       i += 2)
    prims.push_back(i);
  expect_modes_agree(cfg, cat, &prims);
}

TEST(Traversal, TinyCatalogManyThreadsFallsBack) {
  // Fewer leaves than 2x threads: the blocked driver falls back to
  // per-primary instead of idling most threads; results are unchanged.
  const s::Catalog cat = s::uniform_box(50, s::Aabb::cube(15), 26);
  c::EngineConfig cfg = traversal_config();
  cfg.threads = 8;
  expect_modes_agree(cfg, cat, nullptr);
}

TEST(Traversal, SelfPairSubtractionAgrees) {
  const s::Catalog cat = galactos::testing::clumpy_catalog(300, 35.0, 24);
  c::EngineConfig cfg = traversal_config();
  cfg.subtract_self_pairs = true;
  expect_modes_agree(cfg, cat, nullptr);
}

TEST(Traversal, LeafBlockedStaticScheduleBitwiseReproducible) {
  const s::Catalog cat = s::uniform_box(800, s::Aabb::cube(60), 25);
  c::EngineConfig cfg = traversal_config();
  cfg.tree.schedule = c::OmpSchedule::kStatic;
  c::Engine engine(cfg);
  const c::ZetaResult a = engine.run(cat);
  const c::ZetaResult b = engine.run(cat);
  expect_results_match(a, b, 0.0, 1e-300);  // bitwise-identical expected
}
