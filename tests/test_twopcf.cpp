// 2PCF accumulator: Legendre moments from pure-z power sums.
#include <gtest/gtest.h>

#include <cmath>

#include "core/twopcf.hpp"
#include "math/legendre.hpp"
#include "math/rng.hpp"
#include "math/sph_table.hpp"

namespace c = galactos::core;
namespace m = galactos::math;

TEST(TwoPcf, MatchesDirectLegendreSums) {
  const int lmax = 6, nbins = 3;
  m::MonomialMap mono(lmax);
  c::TwoPcfAccumulator acc(lmax, nbins);
  m::Rng rng(3);

  // Direct reference.
  std::vector<double> ref(static_cast<std::size_t>(lmax + 1) * nbins, 0.0);
  std::vector<double> ref_counts(nbins, 0.0);

  for (int primary = 0; primary < 4; ++primary) {
    const double wp = rng.uniform(0.5, 1.5);
    for (int bin = 0; bin < nbins; ++bin) {
      std::vector<double> S(mono.size(), 0.0);
      const int npts = 5 + static_cast<int>(rng.uniform_u64(10));
      for (int p = 0; p < npts; ++p) {
        double x, y, z;
        rng.unit_vector(x, y, z);
        const double w = rng.uniform(0.1, 2.0);
        // accumulate power sums
        for (int t = 0; t < mono.size(); ++t) {
          const auto [a, b, cc] = mono.abc(t);
          S[t] += w * std::pow(x, a) * std::pow(y, b) * std::pow(z, cc);
        }
        ref_counts[bin] += wp * w;
        for (int l = 0; l <= lmax; ++l)
          ref[static_cast<std::size_t>(l) * nbins + bin] +=
              wp * w * m::legendre_p(l, z);
      }
      acc.add_primary_bin(wp, bin, S.data(), mono);
    }
  }
  for (int bin = 0; bin < nbins; ++bin) {
    EXPECT_NEAR(acc.counts()[bin], ref_counts[bin],
                1e-11 * (1 + std::abs(ref_counts[bin])));
    for (int l = 0; l <= lmax; ++l) {
      const double got = acc.xi_raw()[static_cast<std::size_t>(l) * nbins + bin];
      const double want = ref[static_cast<std::size_t>(l) * nbins + bin];
      EXPECT_NEAR(got, want, 1e-10 * (1 + std::abs(want)))
          << "l=" << l << " bin=" << bin;
    }
  }
}

TEST(TwoPcf, CountsEqualMonopole) {
  const int lmax = 4, nbins = 2;
  m::MonomialMap mono(lmax);
  c::TwoPcfAccumulator acc(lmax, nbins);
  std::vector<double> S(mono.size(), 0.0);
  S[mono.index(0, 0, 0)] = 7.5;  // sum of weights
  S[mono.index(0, 0, 1)] = 1.25;
  acc.add_primary_bin(2.0, 1, S.data(), mono);
  EXPECT_DOUBLE_EQ(acc.counts()[1], 15.0);
  EXPECT_DOUBLE_EQ(acc.xi_raw()[static_cast<std::size_t>(0) * nbins + 1],
                   15.0);
  // Dipole = sum w mu = S[0,0,1].
  EXPECT_DOUBLE_EQ(acc.xi_raw()[static_cast<std::size_t>(1) * nbins + 1],
                   2.5);
}

TEST(TwoPcf, MergeEqualsSequential) {
  const int lmax = 3, nbins = 2;
  m::MonomialMap mono(lmax);
  c::TwoPcfAccumulator a(lmax, nbins), b(lmax, nbins), both(lmax, nbins);
  std::vector<double> S1(mono.size(), 0.5), S2(mono.size(), 1.5);
  a.add_primary_bin(1.0, 0, S1.data(), mono);
  b.add_primary_bin(2.0, 1, S2.data(), mono);
  both.add_primary_bin(1.0, 0, S1.data(), mono);
  both.add_primary_bin(2.0, 1, S2.data(), mono);
  a.merge(b);
  for (std::size_t i = 0; i < a.xi_raw().size(); ++i)
    EXPECT_DOUBLE_EQ(a.xi_raw()[i], both.xi_raw()[i]);
  for (int i = 0; i < nbins; ++i)
    EXPECT_DOUBLE_EQ(a.counts()[i], both.counts()[i]);
}
