// Utility layer: checks, argparse, timers, aligned buffers.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "util/aligned.hpp"
#include "util/argparse.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace g = galactos;

TEST(Check, ThrowsWithMessage) {
  try {
    GLX_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(AlignedBuffer, AlignmentAndAccess) {
  g::AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % g::kSimdAlign, 0u);
  buf.fill(3.5);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 3.5);
  buf.reset(10);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(AlignedBuffer, MoveSemantics) {
  g::AlignedBuffer<int> a(5);
  a.fill(7);
  g::AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.size(), 0u);
  g::AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 5u);
}

TEST(ArgParser, ParsesAllForms) {
  const char* argv[] = {"prog",     "--n=100", "--rmax", "2.5",
                        "--mixed",  "--name",  "hello",  "--flag2"};
  g::ArgParser args(8, const_cast<char**>(argv));
  EXPECT_EQ(args.get<int>("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get<double>("rmax", 0.0), 2.5);
  EXPECT_EQ(args.get_str("name", ""), "hello");
  EXPECT_TRUE(args.flag("mixed"));
  EXPECT_TRUE(args.flag("flag2"));
  EXPECT_FALSE(args.flag("absent"));
  EXPECT_EQ(args.get<int>("missing", 42), 42);
  args.finish();
}

TEST(ArgParser, FinishRejectsUnknown) {
  const char* argv[] = {"prog", "--typo=1"};
  g::ArgParser args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.finish(), std::logic_error);
}

TEST(ArgParser, RejectsBadValues) {
  const char* argv[] = {"prog", "--n=abc"};
  g::ArgParser args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get<int>("n", 0), std::logic_error);
}

TEST(ArgParser, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(g::ArgParser(2, const_cast<char**>(argv)), std::logic_error);
}

TEST(Timer, MeasuresElapsed) {
  g::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(PhaseTimer, AccumulatesAndReports) {
  g::PhaseTimer pt;
  pt.add("kernel", 2.0);
  pt.add("kernel", 1.0);
  pt.add("tree", 1.0);
  EXPECT_DOUBLE_EQ(pt.get("kernel"), 3.0);
  EXPECT_DOUBLE_EQ(pt.get("absent"), 0.0);
  EXPECT_DOUBLE_EQ(pt.total(), 4.0);
  const auto sorted = pt.sorted();
  EXPECT_EQ(sorted[0].first, "kernel");
  const std::string rep = pt.report();
  EXPECT_NE(rep.find("kernel"), std::string::npos);
  EXPECT_NE(rep.find("75.0%"), std::string::npos);
}

TEST(PhaseTimer, Merging) {
  g::PhaseTimer a, b;
  a.add("x", 1.0);
  b.add("x", 3.0);
  b.add("y", 2.0);
  g::PhaseTimer amax = a;
  amax.merge_max(b);
  EXPECT_DOUBLE_EQ(amax.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(amax.get("y"), 2.0);
  g::PhaseTimer asum = a;
  asum.merge_sum(b);
  EXPECT_DOUBLE_EQ(asum.get("x"), 4.0);
}

TEST(ScopedPhase, AddsOnDestruction) {
  g::PhaseTimer pt;
  {
    g::ScopedPhase phase(pt, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(pt.get("scope"), 0.005);
}
