// Zeta accumulation: LlmIndex, bin-pair layout, symmetry, merging,
// result arithmetic and the isotropic projection identity.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/zeta.hpp"
#include "math/legendre.hpp"
#include "math/rng.hpp"
#include "math/sph_table.hpp"

namespace c = galactos::core;
namespace m = galactos::math;
using cd = std::complex<double>;

TEST(LlmIndex, SizeMatchesClosedForm) {
  // sum over m of (lmax+1-m)^2.
  for (int lmax : {0, 1, 2, 4, 10}) {
    c::LlmIndex llm(lmax);
    int expect = 0;
    for (int mm = 0; mm <= lmax; ++mm)
      expect += (lmax + 1 - mm) * (lmax + 1 - mm);
    EXPECT_EQ(llm.size(), expect);
  }
  EXPECT_EQ(c::LlmIndex(10).size(), 506);
}

TEST(LlmIndex, RoundTripAndAlmIndices) {
  c::LlmIndex llm(6);
  for (int i = 0; i < llm.size(); ++i) {
    const auto t = llm.at(i);
    EXPECT_EQ(llm.index(t.l, t.lp, t.m), i);
    EXPECT_LE(t.m, std::min(t.l, t.lp));
    EXPECT_EQ(llm.alm_index_1()[i], m::lm_index(t.l, t.m));
    EXPECT_EQ(llm.alm_index_2()[i], m::lm_index(t.lp, t.m));
  }
}

TEST(ZetaAccumulator, BinPairLayout) {
  c::ZetaAccumulator z(2, 4);
  EXPECT_EQ(c::ZetaAccumulator::bin_pair_count(4), 10);
  int expect = 0;
  for (int b1 = 0; b1 < 4; ++b1)
    for (int b2 = b1; b2 < 4; ++b2) EXPECT_EQ(z.bin_pair(b1, b2), expect++);
}

namespace {

// Builds alm arrays for a synthetic set of per-bin weighted directions and
// returns the expected zeta via explicit double loops.
struct Synthetic {
  std::vector<cd> alm;             // [nbins][nlm]
  std::vector<std::uint8_t> touched;
};

Synthetic make_synthetic(int lmax, int nbins, std::uint64_t seed) {
  m::SphHarmTable table(lmax);
  m::Rng rng(seed);
  Synthetic s;
  const int nlm = m::nlm(lmax);
  s.alm.assign(static_cast<std::size_t>(nbins) * nlm, cd{0, 0});
  s.touched.assign(nbins, 0);
  for (int b = 0; b < nbins; ++b) {
    if (b == 1) continue;  // leave a hole
    s.touched[b] = 1;
    const int npts = 3 + static_cast<int>(rng.uniform_u64(5));
    for (int p = 0; p < npts; ++p) {
      double x, y, z;
      rng.unit_vector(x, y, z);
      const double w = rng.uniform(0.5, 1.5);
      for (int l = 0; l <= lmax; ++l)
        for (int mm = 0; mm <= l; ++mm)
          s.alm[static_cast<std::size_t>(b) * nlm + m::lm_index(l, mm)] +=
              w * std::conj(table.eval(l, mm, x, y, z));
    }
  }
  return s;
}

}  // namespace

TEST(ZetaAccumulator, AddPrimaryMatchesExplicitProducts) {
  const int lmax = 3, nbins = 3;
  const int nlm = m::nlm(lmax);
  c::ZetaAccumulator z(lmax, nbins);
  const Synthetic s = make_synthetic(lmax, nbins, 42);
  const double wp = 1.7;
  z.add_primary(wp, s.alm.data(), s.touched.data());
  EXPECT_EQ(z.primaries(), 1u);
  EXPECT_DOUBLE_EQ(z.sum_weight(), wp);

  for (int b1 = 0; b1 < nbins; ++b1)
    for (int b2 = 0; b2 < nbins; ++b2)
      for (int l = 0; l <= lmax; ++l)
        for (int lp = 0; lp <= lmax; ++lp)
          for (int mm = 0; mm <= std::min(l, lp); ++mm) {
            cd expect{0, 0};
            if (s.touched[b1] && s.touched[b2])
              expect = wp *
                       s.alm[static_cast<std::size_t>(b1) * nlm +
                             m::lm_index(l, mm)] *
                       std::conj(s.alm[static_cast<std::size_t>(b2) * nlm +
                                       m::lm_index(lp, mm)]);
            const cd got = z.raw(b1, b2, l, lp, mm);
            EXPECT_NEAR(std::abs(got - expect), 0.0, 1e-12)
                << b1 << b2 << " " << l << lp << mm;
          }
}

// add_primary(A) + add_primary_cross(A, B) must equal add_primary(A + B):
// the two-pass completion identity a·a* = A·A* + (A·B* + B·A* + B·B*),
// with disjoint, overlapping and empty touched-bin patterns — and it must
// not count an extra primary.
TEST(ZetaAccumulator, AddPrimaryCrossCompletesTheSplit) {
  const int lmax = 3, nbins = 4;
  const int nlm = m::nlm(lmax);
  const double wp = 1.3;
  const Synthetic a = make_synthetic(lmax, nbins, 11);
  Synthetic b = make_synthetic(lmax, nbins, 12);
  // Make the touched patterns genuinely different: clear one bin A has.
  b.touched[0] = 0;
  for (int k = 0; k < nlm; ++k) b.alm[k] = cd{0, 0};

  // Reference: one shot over the union alm.
  Synthetic u = a;
  for (int bb = 0; bb < nbins; ++bb) {
    if (!b.touched[bb]) continue;
    u.touched[bb] = 1;
    for (int k = 0; k < nlm; ++k)
      u.alm[static_cast<std::size_t>(bb) * nlm + k] +=
          b.alm[static_cast<std::size_t>(bb) * nlm + k];
  }
  c::ZetaAccumulator fused(lmax, nbins);
  fused.add_primary(wp, u.alm.data(), u.touched.data());

  c::ZetaAccumulator split(lmax, nbins);
  split.add_primary(wp, a.alm.data(), a.touched.data());
  split.add_primary_cross(wp, a.alm.data(), a.touched.data(), b.alm.data(),
                          b.touched.data());

  EXPECT_EQ(split.primaries(), 1u);  // the cross term is not a primary
  EXPECT_DOUBLE_EQ(split.sum_weight(), wp);
  const auto sf = fused.snapshot(), ss = split.snapshot();
  for (std::size_t i = 0; i < sf.size(); ++i)
    EXPECT_NEAR(std::abs(sf[i] - ss[i]), 0.0, 1e-12) << i;
}

// Degenerate cross patterns: B empty everywhere adds exactly nothing; A
// empty everywhere reduces the completion to the pure B·B* product.
TEST(ZetaAccumulator, AddPrimaryCrossDegenerateSides) {
  const int lmax = 2, nbins = 3;
  const int nlm = m::nlm(lmax);
  const Synthetic a = make_synthetic(lmax, nbins, 21);
  std::vector<cd> zero_alm(static_cast<std::size_t>(nbins) * nlm, cd{0, 0});
  std::vector<std::uint8_t> zero_touched(nbins, 0);

  c::ZetaAccumulator only_a(lmax, nbins), with_empty_b(lmax, nbins);
  only_a.add_primary(1.0, a.alm.data(), a.touched.data());
  with_empty_b.add_primary(1.0, a.alm.data(), a.touched.data());
  with_empty_b.add_primary_cross(1.0, a.alm.data(), a.touched.data(),
                                 zero_alm.data(), zero_touched.data());
  const auto s1 = only_a.snapshot(), s2 = with_empty_b.snapshot();
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_EQ(s1[i], s2[i]);  // bitwise: the empty side must add nothing

  c::ZetaAccumulator pure_b(lmax, nbins), cross_only_b(lmax, nbins);
  pure_b.add_primary(2.0, a.alm.data(), a.touched.data());
  cross_only_b.add_primary_cross(2.0, zero_alm.data(), zero_touched.data(),
                                 a.alm.data(), a.touched.data());
  const auto s3 = pure_b.snapshot(), s4 = cross_only_b.snapshot();
  for (std::size_t i = 0; i < s3.size(); ++i)
    EXPECT_NEAR(std::abs(s3[i] - s4[i]), 0.0, 1e-13);
}

TEST(ZetaAccumulator, SymmetryUnderBinSwap) {
  const int lmax = 4, nbins = 4;
  c::ZetaAccumulator z(lmax, nbins);
  const Synthetic s = make_synthetic(lmax, nbins, 7);
  z.add_primary(1.0, s.alm.data(), s.touched.data());
  for (int b1 = 0; b1 < nbins; ++b1)
    for (int b2 = 0; b2 < nbins; ++b2)
      for (int l = 0; l <= lmax; ++l)
        for (int lp = 0; lp <= lmax; ++lp)
          for (int mm = 0; mm <= std::min(l, lp); ++mm) {
            const cd a = z.raw(b1, b2, l, lp, mm);
            const cd b = z.raw(b2, b1, lp, l, mm);
            EXPECT_NEAR(std::abs(a - std::conj(b)), 0.0, 1e-13);
          }
}

TEST(ZetaAccumulator, MergeEqualsSequential) {
  const int lmax = 2, nbins = 3;
  c::ZetaAccumulator a(lmax, nbins), b(lmax, nbins), both(lmax, nbins);
  const Synthetic s1 = make_synthetic(lmax, nbins, 1);
  const Synthetic s2 = make_synthetic(lmax, nbins, 2);
  a.add_primary(1.0, s1.alm.data(), s1.touched.data());
  b.add_primary(2.0, s2.alm.data(), s2.touched.data());
  both.add_primary(1.0, s1.alm.data(), s1.touched.data());
  both.add_primary(2.0, s2.alm.data(), s2.touched.data());
  a.merge(b);
  EXPECT_EQ(a.primaries(), both.primaries());
  EXPECT_DOUBLE_EQ(a.sum_weight(), both.sum_weight());
  const auto sa = a.snapshot(), sb = both.snapshot();
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_NEAR(std::abs(sa[i] - sb[i]), 0.0, 1e-13);
}

TEST(ZetaAccumulator, MergeRejectsMismatchedShapes) {
  c::ZetaAccumulator a(2, 3), b(3, 3), cc(2, 4);
  EXPECT_THROW(a.merge(b), std::logic_error);
  EXPECT_THROW(a.merge(cc), std::logic_error);
}

TEST(ZetaResult, IsotropicProjectionMatchesAdditionTheorem) {
  // Single primary with two secondaries in different bins: the isotropic
  // multipole must equal 4pi/(2l+1) * (2l+1)/(4pi) * P_l(u1.u2) = P_l(mu).
  const int lmax = 6, nbins = 2;
  m::SphHarmTable table(lmax);
  const int nlm = m::nlm(lmax);
  m::Rng rng(12);
  double x1, y1, z1, x2, y2, z2;
  rng.unit_vector(x1, y1, z1);
  rng.unit_vector(x2, y2, z2);
  std::vector<cd> alm(static_cast<std::size_t>(nbins) * nlm, cd{0, 0});
  std::vector<std::uint8_t> touched(nbins, 1);
  for (int l = 0; l <= lmax; ++l)
    for (int mm = 0; mm <= l; ++mm) {
      alm[m::lm_index(l, mm)] = std::conj(table.eval(l, mm, x1, y1, z1));
      alm[nlm + m::lm_index(l, mm)] = std::conj(table.eval(l, mm, x2, y2, z2));
    }
  c::ZetaAccumulator z(lmax, nbins);
  z.add_primary(1.0, alm.data(), touched.data());

  c::ZetaResult res;
  res.bins = c::RadialBins(1, 3, nbins);
  res.lmax = lmax;
  res.zeta_data = z.snapshot();
  res.sum_primary_weight = 1.0;
  res.n_primaries = 1;
  res.pair_counts.assign(nbins, 0.0);
  res.xi_raw.assign((lmax + 1) * nbins, 0.0);

  const double mu = x1 * x2 + y1 * y2 + z1 * z2;
  for (int l = 0; l <= lmax; ++l)
    EXPECT_NEAR(res.isotropic(l, 0, 1), m::legendre_p(l, mu), 1e-10) << l;
}

TEST(ZetaResult, AccumulateAddsEverything) {
  c::ZetaResult a, b;
  a.bins = b.bins = c::RadialBins(1, 10, 2);
  a.lmax = b.lmax = 1;
  a.n_primaries = 3;
  b.n_primaries = 4;
  a.sum_primary_weight = 1.5;
  b.sum_primary_weight = 2.5;
  a.n_pairs = 10;
  b.n_pairs = 20;
  c::LlmIndex llm(1);
  a.zeta_data.assign(3 * llm.size(), cd{1, 1});
  b.zeta_data.assign(3 * llm.size(), cd{2, -1});
  a.pair_counts = {1, 2};
  b.pair_counts = {10, 20};
  a.xi_raw.assign(4, 1.0);
  b.xi_raw.assign(4, 3.0);
  a.accumulate(b);
  EXPECT_EQ(a.n_primaries, 7u);
  EXPECT_DOUBLE_EQ(a.sum_primary_weight, 4.0);
  EXPECT_EQ(a.n_pairs, 30u);
  EXPECT_EQ(a.zeta_data[0], (cd{3, 0}));
  EXPECT_DOUBLE_EQ(a.pair_counts[1], 22.0);
  EXPECT_DOUBLE_EQ(a.xi_raw[2], 4.0);
}

TEST(ZetaResult, AccumulateRejectsMismatch) {
  c::ZetaResult a, b;
  a.bins = c::RadialBins(1, 10, 2);
  b.bins = c::RadialBins(1, 10, 3);
  a.lmax = b.lmax = 1;
  EXPECT_THROW(a.accumulate(b), std::logic_error);
}
