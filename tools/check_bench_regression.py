#!/usr/bin/env python3
"""Gate a committed bench baseline against a freshly generated JSON.

Three file kinds are understood, auto-detected from the "bench" tag:

bench_dist_scaling (BENCH_dist.json) — FAILS (exit 1) when the
distributed pipeline regressed, so the CI artifact trend is enforced
rather than eyeballed:

  * pair imbalance — max/mean kernel pairs per (ranks, policy) run. The
    partition is deterministic for a given catalog/config, so this metric
    is machine-independent: any growth beyond --imbalance-tol is a real
    partitioner regression.
  * wall time (optional, --time-tol) — compared as the NORMALIZED scaling
    shape elapsed(r)/elapsed(1 rank, same policy), not absolute seconds,
    so a slower/faster runner cannot trip it; only a worse scaling curve
    can (e.g. rank parallelism breaking). Disabled unless --time-tol is
    given because the shape is still host-sensitive in the extreme
    (single-core baselines are the worst case, so regressions against
    them are conservative).
  * halo-hiding (optional, --hidden-tol) — per overlap mode of the
    pipeline_ab section, the hidden fraction
    halo_hidden / (halo_hidden + halo_blocked) must not drop more than
    --hidden-tol below the baseline's. This is what catches an overlap
    regression (e.g. the owned pass silently re-serialized behind the
    exchange) that total wall time hides. Modes whose halo window is
    microscopic in either file (< --hidden-floor seconds) are skipped:
    max/min noise there is meaningless.

fig4_breakdown (BENCH_fig4.json) — the kernel-GFLOP/s floor:

  * engine kernel throughput (--kernel-gflops-floor) — for each
    traversal driver (per_primary, leaf_blocked), the fresh
    kernel_gflops must stay at or above baseline * FLOOR. FLOOR is a
    fraction (e.g. 0.6): generous enough that runner-to-runner hardware
    variance passes, tight enough that a silent fall-back to the scalar
    kernel (a ~4-8x drop on any SIMD host) fails loudly. Baselines
    recorded before the SIMD kernel carry no kernel_gflops key and are
    skipped with a notice; a FRESH file missing the key is a violation
    (the bench stopped reporting the gated metric).
  * kernel ISA A/B coverage — every kernel_isa_ab row the baseline
    marks supported must exist in the fresh file. A fresh row marked
    unsupported is skipped with a notice (runner genuinely lacks the
    ISA — e.g. no AVX-512); a missing row is a violation (the A/B
    matrix silently shrank). Supported-on-both rows are also held to
    the same GFLOP/s floor.
  * candidate ratio (--candidate-ratio-ceiling) — per driver, the fresh
    candidates/pairs ratio must stay at or below an ABSOLUTE ceiling.
    The ratio is a pure function of the pruning geometry (deterministic
    for a given catalog/config, machine-independent), so any growth is
    a real pruning regression, not runner noise. Baselines recorded
    before the metric existed are skipped with a notice; a FRESH file
    missing the metric while the baseline has it is a violation.
  * neighbor-query share (--query-share-tol) — per driver, the fresh
    neighbor-query seconds as a fraction of total_seconds must not
    exceed the baseline's share by more than TOL (absolute). Shares,
    not seconds, so a uniformly slower/faster runner cannot trip it;
    only the traversal growing relative to the rest of the engine can.

fft_estimator (BENCH_fft.json) — the mesh-estimator accuracy contract:

  * committed accuracy (--fft-err-ceiling) — the committed grid config's
    max gated relative error vs the tree backend must stay at or below
    an ABSOLUTE ceiling. The mock catalog is seeded and the estimator is
    deterministic up to FFT round-off, so the ceiling needs no baseline
    slack; pick it with margin over the committed value (e.g. 5e-4 over
    a measured 2.5e-4) so libm/compiler variation passes but an aliasing
    or kernel-normalization regression (typically >= 2x) fails loudly.
  * per-grid error drift (--fft-err-tol) — each baseline grid row's
    interlaced error may grow by at most this fraction in the fresh
    file. Catches a coarse-grid regression the committed (finest) gate
    would miss. A baseline grid row missing from the fresh file is a
    violation (the convergence sweep shrank).
  * convergence monotonicity — the fresh interlaced errors must strictly
    decrease as grid_n grows. A non-converging sweep means the estimator
    stopped measuring the signal (e.g. the bin kernels froze at one
    resolution), which per-grid drift tolerances cannot see.
  * crossover — the fresh crossover_grid (coarsest grid meeting the
    target error) must exist and must not exceed the baseline's:
    needing a finer mesh for the same accuracy is a regression.

The run configs must match between baseline and fresh file — comparing
different workloads is meaningless — unless --allow-config-mismatch is
given. Baseline runs missing from the fresh file fail too (shrinking
coverage is a regression).

Every failure mode exits with a single-line "error: ..." diagnostic —
a missing, truncated, or schema-malformed JSON file must read as one
actionable line in a CI log, never a Python traceback. `--self-test`
exercises exactly those paths by re-invoking this script as a
subprocess against synthetic good/bad fixtures (wired into ctest and
the CI chaos leg, so the gate's own error handling is itself gated).

Usage:
  tools/check_bench_regression.py --baseline bench/baselines/BENCH_dist.ci.json \
      --fresh BENCH_dist.ci.json [--imbalance-tol 0.25] [--time-tol 0.25]
  tools/check_bench_regression.py --baseline bench/baselines/BENCH_fig4.ci.json \
      --fresh BENCH_fig4.json --kernel-gflops-floor 0.6
  tools/check_bench_regression.py --baseline bench/baselines/BENCH_fft.ci.json \
      --fresh BENCH_fft.json --fft-err-ceiling 5e-4
  tools/check_bench_regression.py --self-test
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Below this, max/mean noise (a handful of pairs moving across a cut) can
# exceed any relative tolerance without meaning anything.
IMBALANCE_ABS_FLOOR = 0.02

# The distributed correctness contract: kLet results must match kFullShell
# to this tolerance. The bench records zeta_max_rel_diff as the worst
# payload deviation normalized by the payload's max magnitude —
# summation-reorder round-off lands at ~1e-15, a single flipped pair at
# ~1e-7, so this gate separates the regimes by three decades either way.
HALO_ZETA_REL_GATE = 1e-10

CONFIG_KEYS = ("n", "rmax", "side", "lmax", "max_ranks", "catalog")

# kernel_isa is deliberately absent: it records the level auto-detect
# resolved to on the generating host, which legitimately differs between
# the baseline machine and the runner.
FIG4_CONFIG_KEYS = ("n", "rmax", "lmax", "nbins", "threads", "precision",
                    "index")

# "gate" is included: it sets which multipoles enter the gated-error max,
# so errors measured at different gates are not comparable.
FFT_CONFIG_KEYS = ("n_galaxies", "box_side", "rmin", "rmax", "nbins",
                   "lmax", "assignment", "interlace", "compensate",
                   "edge_antialias", "gate")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path}: top level is {type(doc).__name__}, "
                 f"expected a JSON object")
    return doc


def runs_by_key(doc):
    return {(r["ranks"], r["policy"]): r for r in doc.get("runs", [])}


def normalized_time(runs, key):
    """elapsed(r, policy) / elapsed(1, policy); None when not computable."""
    base = runs.get((1, key[1]))
    if base is None or base["elapsed_seconds"] <= 0:
        return None
    return runs[key]["elapsed_seconds"] / base["elapsed_seconds"]


def ab_modes_by_name(doc):
    """pipeline_ab mode rows keyed by overlap_mode; {} when absent."""
    ab = doc.get("pipeline_ab", {})
    return {m["overlap_mode"]: m for m in ab.get("modes", [])}


def hidden_fraction(mode_row):
    denom = (mode_row.get("halo_hidden_seconds", 0.0)
             + mode_row.get("halo_blocked_seconds", 0.0))
    if denom <= 0:
        return None, 0.0
    return mode_row.get("halo_hidden_seconds", 0.0) / denom, denom


def check_hidden(baseline, fresh, tol, floor, violations):
    base_modes = ab_modes_by_name(baseline)
    fresh_modes = ab_modes_by_name(fresh)
    if not base_modes:
        print("hidden-fraction gate: baseline has no pipeline_ab modes "
              "(pre-two-pass baseline?) — skipping")
        return
    print(f"\n{'mode':<12} {'hidden(base)':>12} {'hidden(fresh)':>13}"
          f"  verdict")
    for name in sorted(base_modes):
        if name == "sequential":
            continue  # nothing is hidden by construction
        base_frac, base_denom = hidden_fraction(base_modes[name])
        row = fresh_modes.get(name)
        if row is None:
            violations.append(
                f"pipeline_ab mode '{name}' missing from the fresh file")
            print(f"{name:<12} {'—':>12} {'MISSING':>13}")
            continue
        fresh_frac, fresh_denom = hidden_fraction(row)
        if min(base_denom, fresh_denom) < floor:
            print(f"{name:<12} {'—':>12} {'—':>13}  skipped "
                  f"(halo window < {floor:g}s)")
            continue
        verdict = "ok"
        if fresh_frac < base_frac - tol:
            verdict = "REGRESSED"
            violations.append(
                f"pipeline_ab mode '{name}': hidden fraction "
                f"{base_frac:.3f} -> {fresh_frac:.3f} "
                f"(drop > {tol:.2f})")
        print(f"{name:<12} {base_frac:>12.3f} {fresh_frac:>13.3f}  {verdict}")


def check_halo_compression(fresh, ceiling, violations):
    """LET halo bytes must stay at or below CEILING x the full-shell bytes
    for every policy in the fresh file's halo_compression section, and the
    paired runs must agree on zeta to the distributed 1e-10 gate. Both are
    absolute contracts (the catalog is seeded and the partition
    deterministic), so no baseline section is needed."""
    hc = fresh.get("halo_compression")
    if hc is None:
        violations.append(
            "fresh file carries no halo_compression section "
            "(the bench stopped reporting the gated metric)")
        print("\nhalo-compression gate: section MISSING from the fresh file")
        return
    print(f"\n{'policy':<17} {'full-shell B':>12} {'LET B':>12} {'ratio':>7}"
          f" {'ceiling':>8} {'zeta diff':>10}  verdict")
    for row in hc.get("policies", []):
        policy = row["policy"]
        full = row["full_shell_bytes"]
        let = row["let_bytes"]
        ratio = let / full if full else 0.0
        zdiff = row.get("zeta_max_rel_diff", 0.0)
        verdicts = []
        if full and let > ceiling * full:
            verdicts.append(
                f"halo_compression ({policy}): LET bytes {let} exceed "
                f"{ceiling:g} x full-shell {full} (ratio {ratio:.3f} — the "
                f"pruned exchange stopped compressing)")
        if zdiff > HALO_ZETA_REL_GATE:
            verdicts.append(
                f"halo_compression ({policy}): zeta_max_rel_diff {zdiff:.3e} "
                f"exceeds the {HALO_ZETA_REL_GATE:g} distributed gate "
                f"(kLet no longer matches kFullShell)")
        print(f"{policy:<17} {full:>12} {let:>12} {ratio:>7.3f}"
              f" {ceiling:>8.3f} {zdiff:>10.2e}  "
              f"{'REGRESSED' if verdicts else 'ok'}")
        violations.extend(verdicts)


def query_share(driver_row):
    """neighbor-query seconds / total_seconds; None when not computable."""
    total = driver_row.get("total_seconds")
    query = driver_row.get("neighbor query")
    if total is None or query is None or total <= 0:
        return None
    return query / total


def check_fig4(baseline, fresh, args):
    """fig4_breakdown mode: the kernel-GFLOP/s floor + ISA A/B coverage."""
    mismatched = [
        k for k in FIG4_CONFIG_KEYS
        if baseline.get("config", {}).get(k) != fresh.get("config", {}).get(k)
    ]
    if mismatched and not args.allow_config_mismatch:
        for k in mismatched:
            print(f"config mismatch on '{k}': baseline="
                  f"{baseline.get('config', {}).get(k)!r} fresh="
                  f"{fresh.get('config', {}).get(k)!r}")
        sys.exit("error: baseline and fresh configs differ — these runs are "
                 "not comparable (--allow-config-mismatch to override)")

    floor = args.kernel_gflops_floor
    if floor is None:
        sys.exit("error: fig4_breakdown files need --kernel-gflops-floor "
                 "(fraction of the baseline GFLOP/s the fresh run must keep, "
                 "e.g. 0.6)")

    violations = []
    print(f"{'metric':<28} {'base GF/s':>10} {'fresh GF/s':>10}"
          f" {'floor':>8}  verdict")

    def gate(label, base_gf, fresh_gf):
        if base_gf is None:
            print(f"{label:<28} {'—':>10} {'—':>10} {'—':>8}  skipped "
                  f"(baseline predates the kernel_gflops metric)")
            return
        if fresh_gf is None:
            violations.append(
                f"{label}: fresh file carries no kernel_gflops "
                f"(the bench stopped reporting the gated metric)")
            print(f"{label:<28} {base_gf:>10.2f} {'MISSING':>10}")
            return
        lim = base_gf * floor
        bad = fresh_gf < lim
        if bad:
            violations.append(
                f"{label}: kernel_gflops {base_gf:.2f} -> {fresh_gf:.2f} "
                f"(below floor {lim:.2f} = baseline x {floor:g})")
        print(f"{label:<28} {base_gf:>10.2f} {fresh_gf:>10.2f}"
              f" {lim:>8.2f}  {'REGRESSED' if bad else 'ok'}")

    for driver in ("per_primary", "leaf_blocked"):
        gate(f"engine {driver}",
             baseline.get(driver, {}).get("kernel_gflops"),
             fresh.get(driver, {}).get("kernel_gflops"))

    if args.candidate_ratio_ceiling is not None:
        ceiling = args.candidate_ratio_ceiling
        for driver in ("per_primary", "leaf_blocked"):
            label = f"{driver} candidate ratio"
            base_cr = baseline.get(driver, {}).get("candidate_ratio")
            fresh_cr = fresh.get(driver, {}).get("candidate_ratio")
            if fresh_cr is None:
                if base_cr is None:
                    print(f"{label:<28} {'—':>10} {'—':>10} {'—':>8}  skipped "
                          f"(pre-candidate-ratio baseline and fresh file)")
                    continue
                violations.append(
                    f"{label}: fresh file carries no candidate_ratio "
                    f"(the bench stopped reporting the gated metric)")
                print(f"{label:<28} {base_cr:>10.3f} {'MISSING':>10}")
                continue
            bad = fresh_cr > ceiling
            if bad:
                violations.append(
                    f"{label}: candidates/pairs {fresh_cr:.3f} exceeds the "
                    f"ceiling {ceiling:g} (pruning regressed)")
            base_s = f"{base_cr:.3f}" if base_cr is not None else "—"
            print(f"{label:<28} {base_s:>10} {fresh_cr:>10.3f}"
                  f" {ceiling:>8.3f}  {'REGRESSED' if bad else 'ok'}")

    if args.query_share_tol is not None:
        tol = args.query_share_tol
        for driver in ("per_primary", "leaf_blocked"):
            label = f"{driver} query share"
            base_sh = query_share(baseline.get(driver, {}))
            fresh_sh = query_share(fresh.get(driver, {}))
            if base_sh is None:
                print(f"{label:<28} {'—':>10} {'—':>10} {'—':>8}  skipped "
                      f"(baseline predates the phase breakdown)")
                continue
            if fresh_sh is None:
                violations.append(
                    f"{label}: fresh file carries no neighbor-query phase "
                    f"(the bench stopped reporting the gated metric)")
                print(f"{label:<28} {base_sh:>10.3f} {'MISSING':>10}")
                continue
            lim = base_sh + tol
            bad = fresh_sh > lim
            if bad:
                violations.append(
                    f"{label}: neighbor-query share {base_sh:.3f} -> "
                    f"{fresh_sh:.3f} (above {lim:.3f} = baseline + {tol:g})")
            print(f"{label:<28} {base_sh:>10.3f} {fresh_sh:>10.3f}"
                  f" {lim:>8.3f}  {'REGRESSED' if bad else 'ok'}")

    base_ab = {r["isa"]: r for r in baseline.get("kernel_isa_ab", [])}
    fresh_ab = {r["isa"]: r for r in fresh.get("kernel_isa_ab", [])}
    for isa, base_row in sorted(base_ab.items()):
        label = f"bucket kernel isa:{isa}"
        if not base_row.get("supported"):
            continue  # the baseline host could not measure it
        fresh_row = fresh_ab.get(isa)
        if fresh_row is None:
            violations.append(
                f"kernel_isa_ab row '{isa}' missing from the fresh file "
                f"(the A/B matrix shrank)")
            print(f"{label:<28} {'—':>10} {'MISSING':>10}")
            continue
        if not fresh_row.get("supported"):
            print(f"{label:<28} {'—':>10} {'—':>10} {'—':>8}  skipped "
                  f"(runner does not support {isa})")
            continue
        gate(label, base_row.get("kernel_gflops"),
             fresh_row.get("kernel_gflops"))

    if violations:
        print(f"\n{len(violations)} regression(s) vs {args.baseline}:")
        for v in violations:
            print(f"  - {v}")
        sys.exit(1)
    print(f"\nno regressions vs {args.baseline} "
          f"(kernel GFLOP/s floor {floor:g}x baseline"
          + (f", candidate ratio <= {args.candidate_ratio_ceiling:g}"
             if args.candidate_ratio_ceiling is not None
             else ", ratio check off")
          + (f", query share tol {args.query_share_tol:g}"
             if args.query_share_tol is not None
             else ", query share check off")
          + ")")


def check_fft(baseline, fresh, args):
    """fft_estimator mode: the mesh-estimator accuracy contract."""
    mismatched = [
        k for k in FFT_CONFIG_KEYS
        if baseline.get("config", {}).get(k) != fresh.get("config", {}).get(k)
    ]
    if mismatched and not args.allow_config_mismatch:
        for k in mismatched:
            print(f"config mismatch on '{k}': baseline="
                  f"{baseline.get('config', {}).get(k)!r} fresh="
                  f"{fresh.get('config', {}).get(k)!r}")
        sys.exit("error: baseline and fresh configs differ — these runs are "
                 "not comparable (--allow-config-mismatch to override)")

    ceiling = args.fft_err_ceiling
    if ceiling is None:
        sys.exit("error: fft_estimator files need --fft-err-ceiling "
                 "(absolute cap on the committed grid's max gated relative "
                 "error vs the tree backend, e.g. 5e-4)")

    violations = []

    committed = fresh.get("committed", {})
    fresh_err = committed.get("max_rel_err")
    base_err = baseline.get("committed", {}).get("max_rel_err")
    print(f"{'metric':<28} {'baseline':>10} {'fresh':>10} {'limit':>10}"
          f"  verdict")
    if fresh_err is None:
        violations.append(
            "fresh file carries no committed.max_rel_err "
            "(the bench stopped reporting the gated metric)")
        print(f"{'committed max_rel_err':<28} "
              f"{base_err if base_err is not None else '—':>10} "
              f"{'MISSING':>10}")
    else:
        bad = fresh_err > ceiling
        if bad:
            violations.append(
                f"committed grid {committed.get('grid_n')}: max_rel_err "
                f"{fresh_err:.3e} exceeds the ceiling {ceiling:g} "
                f"(accuracy contract broken)")
        base_s = f"{base_err:.3e}" if base_err is not None else "—"
        print(f"{'committed max_rel_err':<28} {base_s:>10} "
              f"{fresh_err:>10.3e} {ceiling:>10.0e}  "
              f"{'REGRESSED' if bad else 'ok'}")

    tol = args.fft_err_tol
    base_grids = {g["grid_n"]: g for g in baseline.get("grids", [])}
    fresh_grids = {g["grid_n"]: g for g in fresh.get("grids", [])}
    for n in sorted(base_grids):
        label = f"grid {n} interlaced err"
        bg = base_grids[n].get("interlaced_err")
        row = fresh_grids.get(n)
        if row is None:
            violations.append(
                f"grid {n} missing from the fresh file "
                f"(the convergence sweep shrank)")
            print(f"{label:<28} {bg:>10.3e} {'MISSING':>10}")
            continue
        fg = row.get("interlaced_err")
        lim = bg * (1 + tol)
        bad = fg > lim
        if bad:
            violations.append(
                f"grid {n}: interlaced err {bg:.3e} -> {fg:.3e} "
                f"(+{100 * (fg / bg - 1):.1f}% > {100 * tol:.0f}%)")
        print(f"{label:<28} {bg:>10.3e} {fg:>10.3e} {lim:>10.3e}  "
              f"{'REGRESSED' if bad else 'ok'}")

    seq = sorted(fresh_grids)
    for lo, hi in zip(seq, seq[1:]):
        e_lo = fresh_grids[lo].get("interlaced_err")
        e_hi = fresh_grids[hi].get("interlaced_err")
        if e_lo is not None and e_hi is not None and e_hi >= e_lo:
            violations.append(
                f"convergence broke: interlaced err did not decrease from "
                f"grid {lo} ({e_lo:.3e}) to grid {hi} ({e_hi:.3e})")

    base_x = baseline.get("crossover_grid")
    fresh_x = fresh.get("crossover_grid")
    if base_x is not None:
        if fresh_x is None:
            violations.append(
                "fresh file has no crossover_grid — no swept grid met the "
                "target error")
            print(f"{'crossover grid':<28} {base_x:>10} {'MISSING':>10}")
        else:
            bad = fresh_x > base_x
            if bad:
                violations.append(
                    f"crossover grid {base_x} -> {fresh_x}: a finer mesh is "
                    f"now needed for the target error")
            print(f"{'crossover grid':<28} {base_x:>10} {fresh_x:>10}"
                  f" {base_x:>10}  {'REGRESSED' if bad else 'ok'}")

    if violations:
        print(f"\n{len(violations)} regression(s) vs {args.baseline}:")
        for v in violations:
            print(f"  - {v}")
        sys.exit(1)
    print(f"\nno regressions vs {args.baseline} "
          f"(committed err <= {ceiling:g}, per-grid err tol "
          f"{tol:.0%}, monotone convergence, crossover <= {base_x})")


def compare(args):
    baseline = load(args.baseline)
    fresh = load(args.fresh)

    for kind, checker in (("fig4_breakdown", check_fig4),
                          ("fft_estimator", check_fft)):
        if baseline.get("bench") == kind or fresh.get("bench") == kind:
            if baseline.get("bench") != fresh.get("bench"):
                sys.exit(f"error: bench kind mismatch: baseline="
                         f"{baseline.get('bench')!r} "
                         f"fresh={fresh.get('bench')!r}")
            checker(baseline, fresh, args)
            return

    mismatched = [
        k for k in CONFIG_KEYS
        if baseline.get("config", {}).get(k) != fresh.get("config", {}).get(k)
    ]
    if mismatched and not args.allow_config_mismatch:
        for k in mismatched:
            print(f"config mismatch on '{k}': baseline="
                  f"{baseline.get('config', {}).get(k)!r} fresh="
                  f"{fresh.get('config', {}).get(k)!r}")
        sys.exit("error: baseline and fresh configs differ — these runs are "
                 "not comparable (--allow-config-mismatch to override)")

    base_runs = runs_by_key(baseline)
    fresh_runs = runs_by_key(fresh)
    if not base_runs:
        sys.exit(f"error: no runs in baseline {args.baseline}")

    violations = []
    print(f"{'ranks':>5} {'policy':<17} {'imb(base)':>10} {'imb(fresh)':>10}"
          f" {'t_norm(base)':>12} {'t_norm(fresh)':>13}  verdict")
    for key in sorted(base_runs):
        ranks, policy = key
        base = base_runs[key]
        fresh_run = fresh_runs.get(key)
        if fresh_run is None:
            violations.append(f"run (ranks={ranks}, policy={policy}) "
                              f"missing from {args.fresh}")
            print(f"{ranks:>5} {policy:<17} {'—':>10} {'MISSING':>10}")
            continue

        verdicts = []
        bi, fi = base["pair_imbalance"], fresh_run["pair_imbalance"]
        if fi > bi * (1 + args.imbalance_tol) + IMBALANCE_ABS_FLOOR:
            verdicts.append(
                f"pair imbalance {bi:.3f} -> {fi:.3f} "
                f"(+{100 * (fi / bi - 1):.1f}% > {100 * args.imbalance_tol:.0f}%)")

        bt = normalized_time(base_runs, key)
        ft = normalized_time(fresh_runs, key)
        if args.time_tol is not None and bt and ft and ranks > 1:
            if ft > bt * (1 + args.time_tol):
                verdicts.append(
                    f"normalized wall time {bt:.3f} -> {ft:.3f} "
                    f"(+{100 * (ft / bt - 1):.1f}% > {100 * args.time_tol:.0f}%)")

        fmt_t = lambda t: f"{t:.3f}" if t is not None else "—"
        print(f"{ranks:>5} {policy:<17} {bi:>10.3f} {fi:>10.3f}"
              f" {fmt_t(bt):>12} {fmt_t(ft):>13}  "
              f"{'REGRESSED' if verdicts else 'ok'}")
        for v in verdicts:
            violations.append(f"(ranks={ranks}, policy={policy}): {v}")

    if args.hidden_tol is not None:
        check_hidden(baseline, fresh, args.hidden_tol, args.hidden_floor,
                     violations)

    if args.halo_bytes_ratio_ceiling is not None:
        check_halo_compression(fresh, args.halo_bytes_ratio_ceiling,
                               violations)

    if violations:
        print(f"\n{len(violations)} regression(s) vs {args.baseline}:")
        for v in violations:
            print(f"  - {v}")
        sys.exit(1)
    print(f"\nno regressions vs {args.baseline} "
          f"(imbalance tol {args.imbalance_tol:.0%}"
          + (f", time tol {args.time_tol:.0%}" if args.time_tol is not None
             else ", time check off")
          + (f", hidden tol {args.hidden_tol:.2f}"
             if args.hidden_tol is not None else ", hidden check off")
          + (f", halo bytes ratio <= {args.halo_bytes_ratio_ceiling:g}"
             if args.halo_bytes_ratio_ceiling is not None
             else ", halo check off")
          + ")")


def self_test():
    """Re-invoke this script against synthetic fixtures and assert every
    failure mode stays a single actionable line (never a traceback)."""
    me = os.path.abspath(__file__)

    dist_doc = {
        "bench": "dist_scaling",
        "config": {k: 1 for k in CONFIG_KEYS},
        "runs": [
            {"ranks": 1, "policy": "pair_weighted", "pair_imbalance": 1.0,
             "elapsed_seconds": 2.0},
            {"ranks": 4, "policy": "pair_weighted", "pair_imbalance": 1.1,
             "elapsed_seconds": 0.6},
        ],
    }
    dist_doc["halo_compression"] = {
        "ranks": 4, "let_f32": True,
        "policies": [
            {"policy": "pair_weighted", "full_shell_bytes": 100000,
             "let_bytes": 42000, "ratio": 0.42,
             "zeta_max_rel_diff": 3e-13},
        ],
    }
    regressed = json.loads(json.dumps(dist_doc))
    regressed["runs"][1]["pair_imbalance"] = 2.0
    malformed = json.loads(json.dumps(dist_doc))
    del malformed["runs"][1]["ranks"]
    halo_fat = json.loads(json.dumps(dist_doc))
    halo_fat["halo_compression"]["policies"][0]["let_bytes"] = 80000
    halo_drift = json.loads(json.dumps(dist_doc))
    halo_drift["halo_compression"]["policies"][0]["zeta_max_rel_diff"] = 1e-6
    halo_gone = json.loads(json.dumps(dist_doc))
    del halo_gone["halo_compression"]
    halo_broken = json.loads(json.dumps(dist_doc))
    del halo_broken["halo_compression"]["policies"][0]["let_bytes"]
    fig4 = {
        "bench": "fig4_breakdown",
        "config": {k: 1 for k in FIG4_CONFIG_KEYS},
        "per_primary": {"kernel_gflops": 10.0, "candidate_ratio": 1.0,
                        "neighbor query": 2.0, "total_seconds": 10.0},
        "leaf_blocked": {"kernel_gflops": 12.0, "candidate_ratio": 1.7,
                         "neighbor query": 1.0, "total_seconds": 8.0},
        "kernel_isa_ab": [],
    }
    fig4_slow = json.loads(json.dumps(fig4))
    fig4_slow["per_primary"]["kernel_gflops"] = 1.0
    fig4_fat = json.loads(json.dumps(fig4))
    fig4_fat["leaf_blocked"]["candidate_ratio"] = 2.6
    fig4_slowquery = json.loads(json.dumps(fig4))
    fig4_slowquery["leaf_blocked"]["neighbor query"] = 4.0
    # A baseline recorded before the candidate-ratio / phase metrics
    # existed: both new gates must skip with a notice, not fail.
    fig4_prepr = json.loads(json.dumps(fig4))
    for drv in ("per_primary", "leaf_blocked"):
        for key in ("candidate_ratio", "neighbor query", "total_seconds"):
            del fig4_prepr[drv][key]

    fft = {
        "bench": "fft_estimator",
        "config": {k: 1 for k in FFT_CONFIG_KEYS},
        "grids": [
            {"grid_n": 32, "interlaced_err": 3e-3},
            {"grid_n": 64, "interlaced_err": 7e-4},
            {"grid_n": 128, "interlaced_err": 2.5e-4},
        ],
        "committed": {"grid_n": 128, "max_rel_err": 2.5e-4},
        "crossover_grid": 64,
    }
    fft_inaccurate = json.loads(json.dumps(fft))
    fft_inaccurate["committed"]["max_rel_err"] = 8e-4
    fft_nonmono = json.loads(json.dumps(fft))
    fft_nonmono["grids"][2]["interlaced_err"] = 9e-4
    fft_nonmono["committed"]["max_rel_err"] = 4.9e-4  # under the ceiling
    fft_latecross = json.loads(json.dumps(fft))
    fft_latecross["crossover_grid"] = 128
    fft_shrunk = json.loads(json.dumps(fft))
    del fft_shrunk["grids"][1]
    fft_shrunk["crossover_grid"] = 32  # keep only the sweep-shrink failure

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        def fixture(name, content):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                f.write(content if isinstance(content, str)
                        else json.dumps(content))
            return path

        good = fixture("good.json", dist_doc)
        cases = [
            ("identical files pass", 0, "no regressions",
             ["--baseline", good, "--fresh", good]),
            ("imbalance regression fails", 1, "regression",
             ["--baseline", good, "--fresh",
              fixture("regressed.json", regressed)]),
            ("missing file is one line", None, "error: cannot load",
             ["--baseline", good, "--fresh",
              os.path.join(tmp, "nope.json")]),
            ("truncated JSON is one line", None, "error: cannot load",
             ["--baseline", good, "--fresh",
              fixture("truncated.json", '{"bench": "dist_sc')]),
            ("non-object JSON is one line", None, "expected a JSON object",
             ["--baseline", good, "--fresh",
              fixture("array.json", "[1, 2]")]),
            ("missing field is one line", None, "malformed bench JSON",
             ["--baseline", good, "--fresh",
              fixture("malformed.json", malformed)]),
            ("halo ratio within ceiling passes", 0, "no regressions",
             ["--baseline", good, "--fresh", good,
              "--halo-bytes-ratio-ceiling", "0.5"]),
            ("halo ratio violation fails", 1, "stopped compressing",
             ["--baseline", good, "--fresh",
              fixture("halo_fat.json", halo_fat),
              "--halo-bytes-ratio-ceiling", "0.5"]),
            ("halo zeta drift fails", 1, "no longer matches",
             ["--baseline", good, "--fresh",
              fixture("halo_drift.json", halo_drift),
              "--halo-bytes-ratio-ceiling", "0.5"]),
            ("fresh dropping halo_compression fails", 1,
             "stopped reporting the gated metric",
             ["--baseline", good, "--fresh",
              fixture("halo_gone.json", halo_gone),
              "--halo-bytes-ratio-ceiling", "0.5"]),
            ("malformed halo_compression is one line", None,
             "malformed bench JSON",
             ["--baseline", good, "--fresh",
              fixture("halo_broken.json", halo_broken),
              "--halo-bytes-ratio-ceiling", "0.5"]),
            ("fig4 needs an explicit floor", None, "--kernel-gflops-floor",
             ["--baseline", fixture("fig4.json", fig4), "--fresh",
              fixture("fig4b.json", fig4)]),
            ("fig4 floor violation fails", 1, "below floor",
             ["--baseline", os.path.join(tmp, "fig4.json"), "--fresh",
              fixture("fig4_slow.json", fig4_slow),
              "--kernel-gflops-floor", "0.6"]),
            ("fig4 ratio ceiling violation fails", 1, "exceeds the ceiling",
             ["--baseline", os.path.join(tmp, "fig4.json"), "--fresh",
              fixture("fig4_fat.json", fig4_fat),
              "--kernel-gflops-floor", "0.6",
              "--candidate-ratio-ceiling", "1.8"]),
            ("fig4 query share regression fails", 1, "neighbor-query share",
             ["--baseline", os.path.join(tmp, "fig4.json"), "--fresh",
              fixture("fig4_slowquery.json", fig4_slowquery),
              "--kernel-gflops-floor", "0.6",
              "--query-share-tol", "0.1"]),
            ("fig4 pre-metric files skip new gates", 0, "skipped",
             ["--baseline", fixture("fig4_prepr.json", fig4_prepr), "--fresh",
              os.path.join(tmp, "fig4_prepr.json"),
              "--kernel-gflops-floor", "0.6",
              "--candidate-ratio-ceiling", "1.8",
              "--query-share-tol", "0.1"]),
            ("fig4 fresh dropping ratio metric fails", 1,
             "stopped reporting",
             ["--baseline", os.path.join(tmp, "fig4.json"), "--fresh",
              os.path.join(tmp, "fig4_prepr.json"),
              "--kernel-gflops-floor", "0.6",
              "--candidate-ratio-ceiling", "1.8"]),
            ("fft needs an explicit ceiling", None, "--fft-err-ceiling",
             ["--baseline", fixture("fft.json", fft), "--fresh",
              os.path.join(tmp, "fft.json")]),
            ("fft identical files pass", 0, "no regressions",
             ["--baseline", os.path.join(tmp, "fft.json"), "--fresh",
              os.path.join(tmp, "fft.json"),
              "--fft-err-ceiling", "5e-4"]),
            ("fft committed ceiling violation fails", 1,
             "accuracy contract broken",
             ["--baseline", os.path.join(tmp, "fft.json"), "--fresh",
              fixture("fft_inaccurate.json", fft_inaccurate),
              "--fft-err-ceiling", "5e-4"]),
            ("fft broken convergence fails", 1, "convergence broke",
             ["--baseline", os.path.join(tmp, "fft.json"), "--fresh",
              fixture("fft_nonmono.json", fft_nonmono),
              "--fft-err-ceiling", "5e-4"]),
            ("fft later crossover fails", 1, "finer mesh is now needed",
             ["--baseline", os.path.join(tmp, "fft.json"), "--fresh",
              fixture("fft_latecross.json", fft_latecross),
              "--fft-err-ceiling", "5e-4"]),
            ("fft shrunken sweep fails", 1, "convergence sweep shrank",
             ["--baseline", os.path.join(tmp, "fft.json"), "--fresh",
              fixture("fft_shrunk.json", fft_shrunk),
              "--fft-err-ceiling", "5e-4"]),
        ]
        for name, want_rc, needle, argv in cases:
            p = subprocess.run([sys.executable, me] + argv,
                               capture_output=True, text=True)
            out = p.stdout + p.stderr
            ok = (needle in out and "Traceback" not in out
                  and (p.returncode == want_rc if want_rc is not None
                       else p.returncode != 0))
            print(f"self-test: {'ok  ' if ok else 'FAIL'} {name} "
                  f"(exit {p.returncode})")
            if not ok:
                failures.append(name)
                sys.stderr.write(out)
    if failures:
        sys.exit(f"self-test: {len(failures)} of {len(cases)} cases failed")
    print(f"self-test: all {len(cases)} cases passed")


def main():
    ap = argparse.ArgumentParser(
        description="fail on bench regressions vs a committed baseline")
    ap.add_argument("--baseline",
                    help="committed BENCH_dist.json to gate against")
    ap.add_argument("--fresh",
                    help="freshly generated BENCH_dist.json")
    ap.add_argument("--imbalance-tol", type=float, default=0.25,
                    help="max fractional pair-imbalance growth (default .25)")
    ap.add_argument("--time-tol", type=float, default=None,
                    help="max fractional normalized wall-time growth "
                         "(omitted = time check off)")
    ap.add_argument("--hidden-tol", type=float, default=None,
                    help="max absolute drop of the per-mode halo hidden "
                         "fraction hidden/(hidden+blocked) "
                         "(omitted = hidden check off)")
    ap.add_argument("--hidden-floor", type=float, default=1e-3,
                    help="skip the hidden check when the halo window "
                         "(hidden+blocked) is below this many seconds in "
                         "either file (default 1e-3)")
    ap.add_argument("--halo-bytes-ratio-ceiling", type=float, default=None,
                    help="dist files: per policy in the fresh file's "
                         "halo_compression section, LET halo bytes must stay "
                         "at or below this fraction of the full-shell bytes, "
                         "and zeta_max_rel_diff must stay within the 1e-10 "
                         "distributed gate (absolute contracts — no baseline "
                         "slack; omitted = halo check off)")
    ap.add_argument("--kernel-gflops-floor", type=float, default=None,
                    help="fig4 files: fresh kernel_gflops must stay at or "
                         "above baseline x FLOOR (a fraction, e.g. 0.6; "
                         "required for fig4_breakdown baselines)")
    ap.add_argument("--candidate-ratio-ceiling", type=float, default=None,
                    help="fig4 files: per-driver candidates/pairs must stay "
                         "at or below this ABSOLUTE ceiling (the ratio is "
                         "deterministic for a config, so no baseline slack "
                         "is needed; omitted = ratio check off)")
    ap.add_argument("--query-share-tol", type=float, default=None,
                    help="fig4 files: per-driver neighbor-query share of "
                         "total_seconds may exceed the baseline share by at "
                         "most this much, absolute (omitted = check off)")
    ap.add_argument("--fft-err-ceiling", type=float, default=None,
                    help="fft_estimator files: the committed grid's "
                         "max_rel_err vs the tree backend must stay at or "
                         "below this ABSOLUTE ceiling (the mock is seeded, "
                         "so no baseline slack is needed; required for "
                         "fft_estimator baselines, e.g. 5e-4)")
    ap.add_argument("--fft-err-tol", type=float, default=0.25,
                    help="fft_estimator files: max fractional growth of "
                         "each swept grid's interlaced error over the "
                         "baseline row (default .25 — absorbs libm/"
                         "compiler round-off, fails a real accuracy loss)")
    ap.add_argument("--allow-config-mismatch", action="store_true",
                    help="compare even when run configs differ")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the gate's own failure modes against "
                         "synthetic fixtures and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.fresh:
        ap.error("--baseline and --fresh are required (or use --self-test)")

    try:
        compare(args)
    except SystemExit:
        raise
    except (KeyError, TypeError, AttributeError, IndexError) as e:
        # A bench file with the right JSON shape but missing/mis-typed
        # fields must still die on one actionable line, not a traceback.
        sys.exit(f"error: malformed bench JSON "
                 f"({type(e).__name__}: {e}) — missing or mis-typed field; "
                 f"regenerate the file with the current bench binary")


if __name__ == "__main__":
    main()
