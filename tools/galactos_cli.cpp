// galactos — command-line 3PCF runner for catalog files.
//
//   galactos --input catalog.txt --rmin 20 --rmax 200 --nbins 10 --lmax 10 \
//            [--randoms randoms.txt] [--periodic-box 3000] [--radial-los] \
//            [--observer-x 0 --observer-y 0 --observer-z 0] \
//            [--ranks 4] [--threads 0] [--double-precision] \
//            [--subtract-self] [--output zeta] [--binary]
//
// Input: text (x y z [w], '#' comments, commas allowed) or the GLXCAT01
// binary format (by .bin extension). Three estimator modes:
//   * plain        — open box, plane-parallel LOS (default)
//   * periodic     — --periodic-box <side>: exact periodic-box estimate
//   * survey       — --randoms <file>: D - (N_D/N_R) R contrast estimate
// With --ranks > 1 the full distributed pipeline (k-d partition + halo
// exchange + reduction) runs in-process — the same code path the scaling
// benches exercise.
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "core/estimator.hpp"
#include "dist/runner.hpp"
#include "io/catalog_io.hpp"
#include "io/zeta_io.hpp"
#include "util/argparse.hpp"

using namespace galactos;

namespace {

sim::Catalog load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
    return io::read_catalog_binary(path);
  return io::read_catalog_text(path);
}

}  // namespace

namespace {
int run(int argc, char** argv);
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "galactos: error: %s\n", e.what());
    return 1;
  }
}

namespace {

int run(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string input = args.get_str("input", "");
  const std::string randoms_path = args.get_str("randoms", "");
  const std::string output = args.get_str("output", "zeta");
  const double rmin = args.get<double>("rmin", 1.0);
  const double rmax = args.get<double>("rmax", 200.0);
  const int nbins = args.get<int>("nbins", 10);
  const int lmax = args.get<int>("lmax", 10);
  const bool log_bins = args.flag("log-bins");
  const double periodic = args.get<double>("periodic-box", 0.0);
  const bool radial = args.flag("radial-los");
  const double ox = args.get<double>("observer-x", 0.0);
  const double oy = args.get<double>("observer-y", 0.0);
  const double oz = args.get<double>("observer-z", 0.0);
  const int ranks = args.get<int>("ranks", 1);
  // Distributed halo wire format: full (flat point shower) | let (pruned
  // locally-essential tree). Tree backend with --ranks > 1 only.
  const std::string halo_arg = args.get_str("halo-mode", "full");
  const int threads = args.get<int>("threads", 0);
  const bool dbl = args.flag("double-precision");
  const bool self = args.flag("subtract-self");
  const bool binary = args.flag("binary");
  const std::string backend = args.get_str("backend", "tree");
  const int grid_n = args.get<int>("grid-n", 128);
  const std::string assignment = args.get_str("assignment", "tsc");
  const int interlace = args.get<int>("interlace", 1);
  args.finish();

  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: galactos --input <catalog> [--randoms <catalog>]\n"
                 "  [--rmin 1] --rmax <R> [--nbins 10] [--lmax 10]\n"
                 "  [--log-bins] [--periodic-box <side>] [--radial-los]\n"
                 "  [--observer-{x,y,z} 0] [--ranks 1] [--halo-mode full|let]\n"
                 "  [--threads 0]\n"
                 "  [--double-precision] [--subtract-self]\n"
                 "  [--backend tree|fft] [--grid-n 128]\n"
                 "  [--assignment ngp|cic|tsc] [--interlace 0|1]\n"
                 "  [--output zeta] [--binary]\n");
    return 2;
  }

  const sim::Catalog data = load(input);
  std::printf("loaded %zu galaxies from %s\n", data.size(), input.c_str());

  core::EngineConfig cfg;
  cfg.bins = core::RadialBins(
      rmin, rmax, nbins,
      log_bins ? core::BinSpacing::kLog : core::BinSpacing::kLinear);
  cfg.lmax = lmax;
  cfg.threads = threads;
  cfg.tree.precision =
      dbl ? core::TreePrecision::kDouble : core::TreePrecision::kMixed;
  cfg.subtract_self_pairs = self;
  if (radial) {
    cfg.los = core::LineOfSight::kRadial;
    cfg.observer = {ox, oy, oz};
  }

  dist::HaloOptions halo;
  if (halo_arg == "let") {
    halo.mode = dist::HaloMode::kLet;
  } else {
    GLX_CHECK_MSG(halo_arg == "full" || halo_arg == "full-shell",
                  "--halo-mode must be full | let (got '" << halo_arg
                                                          << "')");
  }

  cfg.backend = core::backend_from_name(backend);
  if (cfg.backend == core::EstimatorBackend::kFFT) {
    GLX_CHECK_MSG(randoms_path.empty(),
                  "--backend fft does not support survey mode (--randoms); "
                  "the mesh estimator needs a periodic box");
    GLX_CHECK_MSG(periodic > 0.0,
                  "--backend fft requires --periodic-box <side>");
    cfg.fft.box_side = periodic;
    cfg.fft.grid_n = static_cast<std::size_t>(grid_n);
    cfg.fft.assignment = core::assignment_from_name(assignment);
    cfg.fft.interlace = interlace != 0;
  }

  core::EngineStats stats;
  core::ZetaResult result;
  if (cfg.backend == core::EstimatorBackend::kFFT) {
    std::printf("fft backend: grid %d^3, %s%s\n", grid_n, assignment.c_str(),
                interlace ? ", interlaced" : "");
    if (ranks > 1) {
      std::printf("distributed mode: %d ranks (slab decomposition)\n", ranks);
      dist::DistRunConfig dcfg;
      dcfg.engine = cfg;
      dcfg.ranks = ranks;
      std::vector<dist::RankReport> reports;
      result = dist::run_distributed(data, dcfg, &reports);
      for (const auto& r : reports)
        std::printf("  rank %d: primaries %llu (%.2fs)\n", r.rank,
                    static_cast<unsigned long long>(r.owned),
                    r.total_seconds);
    } else {
      result = core::Engine(cfg).run(data, nullptr, &stats);
    }
  } else if (!randoms_path.empty()) {
    const sim::Catalog randoms = load(randoms_path);
    std::printf("survey mode: %zu randoms (%s)\n", randoms.size(),
                randoms_path.c_str());
    result = core::survey_3pcf(data, randoms, cfg, &stats);
  } else if (periodic > 0.0) {
    std::printf("periodic-box mode: side %.2f\n", periodic);
    result = core::periodic_box_3pcf(data, sim::Aabb::cube(periodic), cfg,
                                     &stats);
  } else if (ranks > 1) {
    std::printf("distributed mode: %d ranks, halo %s\n", ranks,
                dist::halo_mode_name(halo.mode));
    dist::DistRunConfig dcfg;
    dcfg.engine = cfg;
    dcfg.ranks = ranks;
    dcfg.halo = halo;
    std::vector<dist::RankReport> reports;
    result = dist::run_distributed(data, dcfg, &reports);
    for (const auto& r : reports)
      std::printf("  rank %d: owned %llu halo %llu pairs %.3e (%.2fs)\n",
                  r.rank, static_cast<unsigned long long>(r.owned),
                  static_cast<unsigned long long>(r.held - r.owned),
                  static_cast<double>(r.pairs), r.total_seconds);
  } else {
    result = core::Engine(cfg).run(data, nullptr, &stats);
  }

  std::printf("primaries %llu, pairs %.3e, wall %.2fs\n",
              static_cast<unsigned long long>(result.n_primaries),
              static_cast<double>(result.n_pairs), stats.wall_seconds);
  if (stats.wall_seconds > 0)
    std::printf("%s", stats.phases.report().c_str());

  io::write_zeta_csv(result, output + "_zeta.csv");
  io::write_xi_csv(result, output + "_xi.csv");
  std::printf("wrote %s_zeta.csv, %s_xi.csv\n", output.c_str(),
              output.c_str());
  if (binary) {
    io::write_zeta_binary(result, output + ".bin");
    std::printf("wrote %s.bin\n", output.c_str());
  }
  return 0;
}

}  // namespace
