// galactos_dist_main — the mpirun-able distributed 3PCF entrypoint.
//
// One binary, two launch styles, identical pipeline (k-d partition + halo
// exchange + leaf-blocked traversal + tree reduction):
//
//   # real MPI ranks (GALACTOS_WITH_MPI build; backend auto-detected)
//   mpirun -np 4 ./build/galactos_dist_main --n 200000 --rmax 16
//
//   # in-process thread ranks (any build, no MPI installed)
//   ./build/galactos_dist_main --ranks 4 --n 200000 --rmax 16
//
// The backend is chosen at run time by dist::init (GALACTOS_DIST_BACKEND
// overrides: threads | mpi | auto). Input is either --input <catalog>
// (text "x y z [w]" or GLXCAT01 .bin) — under MPI every rank must see the
// same file — or a synthetic Outer Rim-density catalog (--n, --seed).
// Rank 0 prints the per-rank pipeline report and writes the zeta CSV /
// JSON report; the reduced result is identical on every rank.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dist/error.hpp"
#include "dist/runner.hpp"
#include "io/catalog_io.hpp"
#include "io/zeta_io.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"

using namespace galactos;
using galactos::bench::JsonObject;
using galactos::bench::Table;
using galactos::bench::fmt;

namespace {

sim::Catalog load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
    return io::read_catalog_binary(path);
  return io::read_catalog_text(path);
}

int run_with_session(dist::Session& session, int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string input = args.get_str("input", "");
  const std::size_t n = args.get<std::size_t>("n", 100000);
  const std::uint64_t seed = args.get<std::uint64_t>("seed", 12345);
  // Sentinel -1 = "rmax/nbins"; an explicit --rmin 0 is honored (RadialBins
  // accepts a zero lower edge for linear bins).
  const double rmin = args.get<double>("rmin", -1.0);
  const double rmax = args.get<double>("rmax", 16.0);
  const int nbins = args.get<int>("nbins", 10);
  const int lmax = args.get<int>("lmax", 10);
  const int threads = args.get<int>("threads", 1);
  // Comm-wide receive deadline (seconds); 0 = wait forever (the default).
  // GALACTOS_DIST_TIMEOUT_S overrides the flag inside run_rank.
  const double timeout_s = args.get<double>("timeout-s", 0.0);
  // kThreads: rank count (default 4). kMpi: defaults to the mpirun world;
  // smaller values run on a leading sub-communicator.
  const int ranks_arg = args.get<int>(
      "ranks", session.backend() == dist::Backend::kMpi ? 0 : 4);
  const std::string policy = args.get_str("policy", "pair");
  // Overlap depth: two-pass (default) | index | sequential. --sequential
  // is kept as a back-compat alias for --overlap sequential.
  const std::string overlap_arg =
      args.get_str("overlap", args.flag("sequential") ? "sequential"
                                                      : "two-pass");
  // Halo wire format: full (flat point shower, the reference) | let
  // (pruned locally-essential tree — comm volume scales with the domain
  // boundary). --let-f32 additionally quantizes LET coordinates to float32
  // on the wire (safe at the default kMixed tree precision, where the
  // stored planes are float anyway).
  const std::string halo_arg = args.get_str("halo-mode", "full");
  const bool let_f32 = args.flag("let-f32");
  const std::string output = args.get_str("output", "");
  const std::string json_path = args.get_str("json", "");
  // Estimator backend: tree (k-d partition + halo pipeline, the default)
  // or fft (slab-decomposed mesh estimator; periodic box required — --box
  // for file input, the synthetic box side is known).
  const std::string backend = args.get_str("backend", "tree");
  const int grid_n = args.get<int>("grid-n", 128);
  const std::string assignment = args.get_str("assignment", "tsc");
  const int interlace = args.get<int>("interlace", 1);
  const double box = args.get<double>("box", 0.0);
  args.finish();

  const bool root = session.is_root();
  if (root)
    std::printf("galactos_dist_main: backend=%s world=%d\n",
                dist::backend_name(session.backend()), session.size());

  sim::Catalog cat;
  if (!input.empty()) {
    cat = load(input);  // every MPI rank reads the same file
    if (root)
      std::printf("loaded %zu galaxies from %s\n", cat.size(),
                  input.c_str());
  } else {
    cat = bench::outer_rim_scaled(n, seed);
    if (root)
      std::printf("synthetic catalog: %zu galaxies, seed %llu\n", cat.size(),
                  static_cast<unsigned long long>(seed));
  }

  dist::DistRunConfig cfg;
  cfg.engine.bins =
      core::RadialBins(rmin >= 0 ? rmin : rmax / nbins, rmax, nbins);
  cfg.engine.lmax = lmax;
  cfg.engine.threads = threads;
  cfg.engine.tree.precision = core::TreePrecision::kMixed;
  cfg.ranks = ranks_arg;
  cfg.timeout_s = timeout_s;
  cfg.partition = policy == "primary"
                      ? dist::PartitionPolicy::kPrimaryBalanced
                      : dist::PartitionPolicy::kPairWeighted;
  if (overlap_arg == "sequential") {
    cfg.overlap = dist::OverlapMode::kSequential;
  } else if (overlap_arg == "index" || overlap_arg == "index-build") {
    cfg.overlap = dist::OverlapMode::kIndexBuild;
  } else if (overlap_arg == "two-pass" || overlap_arg == "two_pass") {
    cfg.overlap = dist::OverlapMode::kTwoPass;
  } else {
    throw std::runtime_error("--overlap must be sequential | index | "
                             "two-pass (got '" + overlap_arg + "')");
  }
  if (halo_arg == "let") {
    cfg.halo.mode = dist::HaloMode::kLet;
  } else if (halo_arg != "full" && halo_arg != "full-shell") {
    throw std::runtime_error("--halo-mode must be full | let (got '" +
                             halo_arg + "')");
  }
  cfg.halo.let_f32 = let_f32;
  cfg.engine.backend = core::backend_from_name(backend);
  if (cfg.engine.backend == core::EstimatorBackend::kFFT) {
    double side = box;
    if (side <= 0.0 && input.empty()) side = sim::outer_rim_box_side(n);
    if (side <= 0.0)
      throw std::runtime_error(
          "--backend fft with --input needs --box <side> (periodic box)");
    cfg.engine.fft.box_side = side;
    cfg.engine.fft.grid_n = static_cast<std::size_t>(grid_n);
    cfg.engine.fft.assignment = core::assignment_from_name(assignment);
    cfg.engine.fft.interlace = interlace != 0;
    if (root)
      std::printf("fft backend: grid %d^3, %s%s, box %.1f\n", grid_n,
                  assignment.c_str(), interlace ? ", interlaced" : "",
                  side);
  }

  std::vector<dist::RankReport> reports;
  Timer timer;
  const core::ZetaResult result =
      dist::run_distributed(session, cat, cfg, &reports);
  const double elapsed = timer.seconds();

  if (root) {
    Table t({"rank", "owned", "held", "pairs", "partition (s)", "halo (s)",
             "hidden (s)", "build (s)", "engine (s)", "pass1/pass2 (s)",
             "reduce (s)"});
    for (const auto& r : reports)
      t.add_row({fmt(r.rank, "%.0f"), std::to_string(r.owned),
                 std::to_string(r.held), std::to_string(r.pairs),
                 fmt(r.partition_seconds, "%.4f"),
                 fmt(r.halo_seconds, "%.4f"),
                 fmt(r.halo_hidden_seconds, "%.4f"),
                 fmt(r.index_build_seconds, "%.4f"),
                 fmt(r.engine_seconds, "%.4f"),
                 fmt(r.owned_pass_seconds, "%.4f") + "/" +
                     fmt(r.secondary_pass_seconds, "%.4f"),
                 fmt(r.reduce_seconds, "%.4f")});
    std::printf("\n");
    t.print();
    std::printf("\n");
    const double imbalance =
        reports.empty() ? 1.0 : reports.front().pair_imbalance;
    std::uint64_t halo_sent = 0, halo_pts = 0, cells_pruned = 0;
    std::uint64_t comm_sent = 0;
    for (const auto& r : reports) {
      halo_sent += r.halo_bytes_sent;
      halo_pts += r.halo_points_shipped;
      cells_pruned += r.let_cells_pruned;
      for (int p = 0; p < dist::kPhaseCount; ++p)
        comm_sent += r.phase_bytes_sent[p];
    }
    std::printf("ranks %zu  pairs %llu  pair-imbalance %.3f  wall %.3f s\n",
                reports.size(),
                static_cast<unsigned long long>(result.n_pairs), imbalance,
                elapsed);
    std::printf(
        "halo mode %s  halo bytes %llu  points shipped %llu  "
        "let cells pruned %llu  total comm bytes %llu\n",
        dist::halo_mode_name(cfg.halo.mode),
        static_cast<unsigned long long>(halo_sent),
        static_cast<unsigned long long>(halo_pts),
        static_cast<unsigned long long>(cells_pruned),
        static_cast<unsigned long long>(comm_sent));

    if (!output.empty()) io::write_zeta_csv(result, output + "_zeta.csv");
    if (!json_path.empty()) {
      JsonObject o;
      o.add("backend", std::string(dist::backend_name(session.backend())))
          .add("estimator_backend",
               std::string(core::backend_name(cfg.engine.backend)))
          .add("world_size", session.size())
          .add("ranks", static_cast<std::uint64_t>(reports.size()))
          .add("galaxies", static_cast<std::uint64_t>(cat.size()))
          .add("rmax", rmax)
          .add("lmax", lmax)
          .add("policy", policy == "primary" ? "primary_balanced"
                                             : "pair_weighted")
          .add("overlap_mode",
               std::string(dist::overlap_mode_name(cfg.overlap)))
          .add("halo_mode", std::string(dist::halo_mode_name(cfg.halo.mode)))
          .add("let_f32", cfg.halo.let_f32 ? 1 : 0)
          .add("halo_bytes_sent", halo_sent)
          .add("halo_points_shipped", halo_pts)
          .add("let_cells_pruned", cells_pruned)
          .add("comm_bytes_sent", comm_sent)
          .add("n_pairs", result.n_pairs)
          .add("n_primaries", result.n_primaries)
          .add("pair_imbalance", imbalance)
          .add("wall_seconds", elapsed);
      if (cfg.engine.backend == core::EstimatorBackend::kFFT)
        o.add("grid_n", static_cast<std::uint64_t>(cfg.engine.fft.grid_n))
            .add("assignment",
                 std::string(
                     core::assignment_name(cfg.engine.fft.assignment)))
            .add("interlace", cfg.engine.fft.interlace ? 1 : 0);
      double halo_blocked_max = 0, halo_hidden_max = 0;
      for (const auto& r : reports) {
        halo_blocked_max = std::max(halo_blocked_max, r.halo_seconds);
        halo_hidden_max = std::max(halo_hidden_max, r.halo_hidden_seconds);
      }
      o.add("halo_blocked_max_seconds", halo_blocked_max)
          .add("halo_hidden_max_seconds", halo_hidden_max);
      bench::write_json_file(json_path, o.str());
    }
  }
  return 0;
}

// Structured failure taxonomy (documented in README "Failure semantics"):
// scripts and the CI chaos leg key off these codes, so keep them stable.
//   3  dist::TimeoutError   — a deadline expired (what() names the channel)
//   4  dist::ProtocolError  — a framed payload failed integrity checks
//   5  other dist::Error    — peer abort, injected crash, plan parse, ...
//   1  anything else        — argument errors, I/O, std::exception
int run(int argc, char** argv) {
  // init() first: MPI_Init may consume launcher-injected argv entries.
  dist::Session session = dist::init(&argc, &argv);
  // Catch INSIDE the session's scope: the diagnostic must print before
  // anything tears the MPI world down. Under real MPI a clean exit would
  // leave peers blocked in collectives forever, so after reporting, take
  // the whole job down with the taxonomy code (no-op on the thread
  // backend, where the error is rank-local and a plain exit is safe).
  try {
    return run_with_session(session, argc, argv);
  } catch (const dist::TimeoutError& e) {
    std::fprintf(stderr, "galactos_dist_main: FAILED [TimeoutError] %s\n",
                 e.what());
    dist::abort_mpi_world(3);
    return 3;
  } catch (const dist::ProtocolError& e) {
    std::fprintf(stderr, "galactos_dist_main: FAILED [ProtocolError] %s\n",
                 e.what());
    dist::abort_mpi_world(4);
    return 4;
  } catch (const dist::Error& e) {
    std::fprintf(stderr, "galactos_dist_main: FAILED [DistError] %s\n",
                 e.what());
    dist::abort_mpi_world(5);
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "galactos_dist_main: error: %s\n", e.what());
    dist::abort_mpi_world(1);
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // dist::init failures land here (no MPI world is up yet).
    std::fprintf(stderr, "galactos_dist_main: error: %s\n", e.what());
    galactos::dist::abort_mpi_world(1);
    return 1;
  }
}
